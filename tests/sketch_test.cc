// Tests for the frequency-sketch substrate: Count-Sketch recovery bounds and
// linearity, Count-Min one-sided error, Space-Saving guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/space_saving.h"
#include "util/random.h"
#include "util/zipf.h"

namespace wmsketch {
namespace {

// ------------------------------------------------------------ CountSketch

TEST(CountSketchTest, ExactOnSingleKey) {
  CountSketch cs(64, 3, 1);
  cs.Update(42, 5.0f);
  cs.Update(42, 2.5f);
  EXPECT_FLOAT_EQ(cs.Query(42), 7.5f);
}

TEST(CountSketchTest, UnseenKeyNearZeroWhenSparse) {
  CountSketch cs(256, 5, 2);
  for (uint32_t k = 0; k < 10; ++k) cs.Update(k, 1.0f);
  // With 10 keys in 5x256 buckets, an unseen key's buckets are likely empty,
  // and the median over 5 rows is extremely likely to be 0.
  int nonzero = 0;
  for (uint32_t k = 1000; k < 1100; ++k) nonzero += (cs.Query(k) != 0.0f);
  EXPECT_LE(nonzero, 5);
}

TEST(CountSketchTest, NegativeUpdatesSupported) {
  CountSketch cs(64, 3, 3);
  cs.Update(7, -4.0f);
  cs.Update(7, 1.0f);
  EXPECT_FLOAT_EQ(cs.Query(7), -3.0f);
}

TEST(CountSketchTest, MergeEqualsSketchOfSum) {
  CountSketch a(128, 3, 77), b(128, 3, 77), c(128, 3, 77);
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.Bounded(1000));
    const float da = static_cast<float>(rng.NextGaussian());
    const float db = static_cast<float>(rng.NextGaussian());
    a.Update(key, da);
    b.Update(key, db);
    c.Update(key, da + db);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint32_t key = 0; key < 1000; ++key) {
    EXPECT_NEAR(a.Query(key), c.Query(key), 1e-4f) << key;
  }
}

TEST(CountSketchTest, ScaleIsLinear) {
  CountSketch cs(64, 3, 5);
  cs.Update(1, 10.0f);
  cs.Scale(0.25f);
  EXPECT_FLOAT_EQ(cs.Query(1), 2.5f);
}

TEST(CountSketchTest, ClearZeroes) {
  CountSketch cs(64, 3, 5);
  cs.Update(1, 10.0f);
  cs.Clear();
  EXPECT_FLOAT_EQ(cs.Query(1), 0.0f);
  EXPECT_EQ(cs.TableL2Norm(), 0.0);
}

TEST(CountSketchTest, MemoryCostModel) {
  CountSketch cs(256, 4, 1);
  EXPECT_EQ(cs.cells(), 1024u);
  EXPECT_EQ(cs.MemoryCostBytes(), 4096u);
}

// Property (Lemma 1 shape): max point-estimate error over a Zipfian count
// vector decreases as width grows; with width Θ(1/ε²) the error stays below
// ε·‖v‖₂ for all keys, with a comfortable constant.
class CountSketchRecoveryTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CountSketchRecoveryTest, LInfErrorBoundedByL2Norm) {
  const uint32_t width = GetParam();
  CountSketch cs(width, 5, 123);
  ZipfSampler zipf(5000, 1.2);
  Rng rng(55);
  std::unordered_map<uint32_t, float> truth;
  for (int i = 0; i < 50000; ++i) {
    const uint32_t k = static_cast<uint32_t>(zipf.Sample(rng));
    cs.Update(k, 1.0f);
    truth[k] += 1.0f;
  }
  double l2_sq = 0.0;
  for (const auto& [k, v] : truth) l2_sq += static_cast<double>(v) * v;
  const double l2 = std::sqrt(l2_sq);
  double max_err = 0.0;
  for (const auto& [k, v] : truth) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(cs.Query(k)) - v));
  }
  // ε ≈ c/√width with a small constant for depth 5 medians.
  const double eps = 4.0 / std::sqrt(static_cast<double>(width));
  EXPECT_LT(max_err, eps * l2) << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, CountSketchRecoveryTest,
                         ::testing::Values(64u, 256u, 1024u, 4096u));

// --------------------------------------------------------------- CountMin

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cm(64, 4, 9);
  ZipfSampler zipf(2000, 1.1);
  Rng rng(66);
  std::unordered_map<uint32_t, double> truth;
  for (int i = 0; i < 20000; ++i) {
    const uint32_t k = static_cast<uint32_t>(zipf.Sample(rng));
    cm.Update(k);
    truth[k] += 1.0;
  }
  for (const auto& [k, v] : truth) {
    EXPECT_GE(cm.Query(k) + 1e-9, v) << k;
  }
}

TEST(CountMinTest, ErrorWithinL1Bound) {
  const uint32_t width = 512;
  CountMinSketch cm(width, 4, 10);
  ZipfSampler zipf(2000, 1.1);
  Rng rng(67);
  std::unordered_map<uint32_t, double> truth;
  const int total = 50000;
  for (int i = 0; i < total; ++i) {
    const uint32_t k = static_cast<uint32_t>(zipf.Sample(rng));
    cm.Update(k);
    truth[k] += 1.0;
  }
  // Standard guarantee: err ≤ e/width · ‖v‖₁ whp; allow 3x slack.
  const double bound = 3.0 * 2.71828 * total / width;
  for (const auto& [k, v] : truth) {
    EXPECT_LE(cm.Query(k) - v, bound) << k;
  }
}

TEST(CountMinTest, ConservativeUpdateTighter) {
  CountMinSketch plain(64, 4, 11, /*conservative=*/false);
  CountMinSketch cons(64, 4, 11, /*conservative=*/true);
  ZipfSampler zipf(3000, 1.05);
  Rng rng(68);
  std::unordered_map<uint32_t, double> truth;
  for (int i = 0; i < 30000; ++i) {
    const uint32_t k = static_cast<uint32_t>(zipf.Sample(rng));
    plain.Update(k);
    cons.Update(k);
    truth[k] += 1.0;
  }
  double plain_err = 0.0, cons_err = 0.0;
  for (const auto& [k, v] : truth) {
    plain_err += plain.Query(k) - v;
    cons_err += cons.Query(k) - v;
    EXPECT_GE(cons.Query(k) + 1e-9, v);  // still never underestimates
  }
  EXPECT_LE(cons_err, plain_err);
}

TEST(CountMinTest, TotalMassTracked) {
  CountMinSketch cm(64, 2, 12);
  cm.Update(1, 2.0);
  cm.Update(2, 3.0);
  EXPECT_DOUBLE_EQ(cm.TotalMass(), 5.0);
}

// ------------------------------------------------------------ SpaceSaving

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) ss.Update(1);
  for (int i = 0; i < 3; ++i) ss.Update(2);
  EXPECT_EQ(ss.EstimateCount(1), 5u);
  EXPECT_EQ(ss.EstimateCount(2), 3u);
  EXPECT_EQ(ss.ErrorBound(1), 0u);
  EXPECT_EQ(ss.EstimateCount(99), 0u);
}

TEST(SpaceSavingTest, EvictionInheritsMinCount) {
  SpaceSaving ss(2);
  ss.Update(1);
  ss.Update(1);
  ss.Update(2);
  const uint32_t evicted = ss.Update(3);  // displaces item 2 (count 1)
  EXPECT_EQ(evicted, 2u);
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_EQ(ss.EstimateCount(3), 2u);  // min + 1
  EXPECT_EQ(ss.ErrorBound(3), 1u);
}

TEST(SpaceSavingTest, OverestimateBoundedByTOverM) {
  const size_t capacity = 64;
  SpaceSaving ss(capacity);
  ZipfSampler zipf(5000, 1.1);
  Rng rng(77);
  std::unordered_map<uint32_t, uint64_t> truth;
  const uint64_t total = 100000;
  for (uint64_t i = 0; i < total; ++i) {
    const uint32_t k = static_cast<uint32_t>(zipf.Sample(rng));
    ss.Update(k);
    ++truth[k];
  }
  const uint64_t bound = total / capacity;
  for (const SpaceSavingEntry& e : ss.Entries()) {
    const uint64_t t = truth[e.item];
    EXPECT_GE(e.count, t);                 // never underestimates
    EXPECT_LE(e.count - t, bound) << e.item;  // Metwally bound
    EXPECT_LE(e.error, bound);
  }
}

TEST(SpaceSavingTest, TrueHeavyHittersAlwaysMonitored) {
  const size_t capacity = 32;
  SpaceSaving ss(capacity);
  ZipfSampler zipf(2000, 1.3);
  Rng rng(78);
  std::unordered_map<uint32_t, uint64_t> truth;
  const uint64_t total = 80000;
  for (uint64_t i = 0; i < total; ++i) {
    const uint32_t k = static_cast<uint32_t>(zipf.Sample(rng));
    ss.Update(k);
    ++truth[k];
  }
  for (const auto& [k, c] : truth) {
    if (c > total / capacity) {
      EXPECT_TRUE(ss.Contains(k)) << k << " count " << c;
    }
  }
}

TEST(SpaceSavingTest, HeavyHittersGuaranteedVsPermissive) {
  SpaceSaving ss(16);
  for (int i = 0; i < 900; ++i) ss.Update(1);
  for (int i = 0; i < 100; ++i) ss.Update(static_cast<uint32_t>(2 + (i % 50)));
  const auto guaranteed = ss.HeavyHitters(0.5, /*guaranteed=*/true);
  ASSERT_EQ(guaranteed.size(), 1u);
  EXPECT_EQ(guaranteed[0].item, 1u);
  const auto permissive = ss.HeavyHitters(0.5, /*guaranteed=*/false);
  EXPECT_GE(permissive.size(), 1u);
}

TEST(SpaceSavingTest, EntriesSortedDescending) {
  SpaceSaving ss(8);
  for (int i = 0; i < 10; ++i) ss.Update(1);
  for (int i = 0; i < 5; ++i) ss.Update(2);
  for (int i = 0; i < 7; ++i) ss.Update(3);
  const auto entries = ss.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].item, 1u);
  EXPECT_EQ(entries[1].item, 3u);
  EXPECT_EQ(entries[2].item, 2u);
}

TEST(SpaceSavingTest, MemoryCostModel) {
  SpaceSaving ss(128);
  EXPECT_EQ(ss.MemoryCostBytes(), 128u * 12u);
}

}  // namespace
}  // namespace wmsketch
