// Round-trip tests for the facade-level SaveLearner/LoadLearner: for every
// Method, a trained learner serialized and restored must produce identical
// margins and top-K on held-out examples; malformed streams are rejected.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "core/snapshot_io.h"
#include "datagen/classification_gen.h"
#include "util/crc32c.h"
#include "util/memory_cost.h"

namespace wmsketch {
namespace {

LearnerOptions Opts(uint64_t seed = 42) {
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = seed;
  return opts;
}

Learner TrainedLearner(Method method, int examples, uint64_t seed) {
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(method)
                              .SetBudgetBytes(KiB(2))
                              .SetLambda(1e-4)
                              .SetLearningRate(LearningRate::Constant(0.2))
                              .SetSeed(seed)
                              .Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  Learner learner = std::move(built).value();
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed ^ 0x5151);
  std::vector<Example> stream;
  stream.reserve(examples);
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());
  learner.UpdateBatch(stream);
  return learner;
}

TEST(LearnerSerializationTest, RoundTripIsExactForEveryMethod) {
  SyntheticClassificationGen held_out_gen(ClassificationProfile::SmallTest(), 999);
  std::vector<Example> held_out;
  for (int i = 0; i < 200; ++i) held_out.push_back(held_out_gen.Next());

  for (const Method m : AllMethods()) {
    const Learner original = TrainedLearner(m, 3000, 17);

    std::stringstream buffer;
    ASSERT_TRUE(SaveLearner(original, buffer).ok()) << MethodName(m);
    Result<Learner> restored = LoadLearner(buffer, Opts(17));
    ASSERT_TRUE(restored.ok()) << MethodName(m) << ": " << restored.status().ToString();

    EXPECT_EQ(restored.value().method(), m);
    EXPECT_EQ(restored.value().steps(), original.steps()) << MethodName(m);
    EXPECT_EQ(restored.value().MemoryCostBytes(), original.MemoryCostBytes())
        << MethodName(m);
    EXPECT_EQ(restored.value().config().width, original.config().width) << MethodName(m);
    EXPECT_EQ(restored.value().config().depth, original.config().depth) << MethodName(m);
    EXPECT_EQ(restored.value().config().heap_capacity, original.config().heap_capacity)
        << MethodName(m);

    // Identical margins on held-out examples.
    for (const Example& ex : held_out) {
      EXPECT_EQ(restored.value().PredictMargin(ex.x), original.PredictMargin(ex.x))
          << MethodName(m);
      EXPECT_EQ(restored.value().Classify(ex.x), original.Classify(ex.x)) << MethodName(m);
    }
    // Identical point estimates across the feature space.
    for (uint32_t f = 0; f < 4096; f += 9) {
      EXPECT_EQ(restored.value().WeightEstimate(f), original.WeightEstimate(f))
          << MethodName(m) << " feature " << f;
    }
    // Identical top-K retrieval.
    const auto top_a = original.Snapshot(64).top_k();
    const auto top_b = restored.value().Snapshot(64).top_k();
    ASSERT_EQ(top_a.size(), top_b.size()) << MethodName(m);
    for (size_t i = 0; i < top_a.size(); ++i) {
      EXPECT_EQ(top_a[i], top_b[i]) << MethodName(m) << " rank " << i;
    }
  }
}

TEST(LearnerSerializationTest, RestoredOptionsCarrySnapshotLambdaAndSeed) {
  const Learner original = TrainedLearner(Method::kAwmSketch, 500, 23);
  std::stringstream buffer;
  ASSERT_TRUE(SaveLearner(original, buffer).ok());
  // Load under different caller options: λ and seed come from the snapshot.
  LearnerOptions other = Opts(/*seed=*/1);
  other.lambda = 0.5;
  Result<Learner> restored = LoadLearner(buffer, other);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().options().lambda, 1e-4);
  EXPECT_EQ(restored.value().options().seed, 23u);
}

// Recomputes and patches the envelope checksum so a deliberately poked
// payload still passes CRC verification — the loader's own validation of
// the poked field is what's under test, not the checksum.
std::string RewriteCrc(std::string bytes) {
  const uint32_t crc = crc32c::Extend(
      crc32c::Value(bytes.data(), snapshot::kEnvelopeHeaderBytes - sizeof(uint32_t)),
      bytes.data() + snapshot::kEnvelopeHeaderBytes,
      bytes.size() - snapshot::kEnvelopeHeaderBytes);
  std::memcpy(bytes.data() + snapshot::kEnvelopeHeaderBytes - sizeof(uint32_t), &crc,
              sizeof(crc));
  return bytes;
}

TEST(LearnerSerializationTest, MalformedStreamsAreRejected) {
  const Learner original = TrainedLearner(Method::kWmSketch, 300, 29);
  std::stringstream buffer;
  ASSERT_TRUE(SaveLearner(original, buffer).ok());
  const std::string bytes = buffer.str();
  // Facade fields sit behind the 20-byte envelope header: magic(4)
  // version(4) tag(1).
  const size_t tag_at = snapshot::kEnvelopeHeaderBytes + 8;

  // Truncations at envelope-header, facade-header, and payload boundaries
  // fail cleanly.
  for (const size_t cut :
       {0ul, 4ul, 8ul, 9ul, 19ul, 20ul, 24ul, tag_at, bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream cut_stream(bytes.substr(0, cut));
    EXPECT_FALSE(LoadLearner(cut_stream, Opts()).ok()) << "cut " << cut;
  }
  // Wrong magic (no longer an envelope; the legacy path rejects it too).
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  std::stringstream bad_magic_stream(bad_magic);
  EXPECT_EQ(LoadLearner(bad_magic_stream, Opts()).status().code(), StatusCode::kCorruption);
  // A poked tag without a checksum rewrite is caught by the envelope CRC.
  std::string poked = bytes;
  poked[tag_at] = 0x7f;
  std::stringstream poked_stream(poked);
  EXPECT_EQ(LoadLearner(poked_stream, Opts()).status().code(), StatusCode::kCorruption);
  // Out-of-range method tag behind a valid checksum reaches tag validation.
  std::string bad_tag = RewriteCrc(poked);
  std::stringstream bad_tag_stream(bad_tag);
  EXPECT_EQ(LoadLearner(bad_tag_stream, Opts()).status().code(), StatusCode::kCorruption);
  // Method tag pointing at a different method than the payload.
  std::string wrong_tag = bytes;
  wrong_tag[tag_at] = static_cast<char>(Method::kAwmSketch);
  wrong_tag = RewriteCrc(wrong_tag);
  std::stringstream wrong_tag_stream(wrong_tag);
  EXPECT_FALSE(LoadLearner(wrong_tag_stream, Opts()).ok());
}

TEST(LearnerSerializationTest, ContinuedTrainingAfterRestoreMatchesStraightThrough) {
  // Deterministic methods must continue bit-identically after a mid-stream
  // snapshot/restore cycle through the facade.
  for (const Method m : {Method::kSimpleTruncation, Method::kSpaceSavingFrequent,
                         Method::kCountMinFrequent, Method::kFeatureHashing,
                         Method::kWmSketch, Method::kAwmSketch}) {
    SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 77);
    std::vector<Example> stream;
    for (int i = 0; i < 2000; ++i) stream.push_back(gen.Next());

    Learner straight = TrainedLearner(m, 0, 37);
    straight.UpdateBatch(stream);

    Learner first_half = TrainedLearner(m, 0, 37);
    first_half.UpdateBatch(std::span<const Example>(stream.data(), 1000));
    std::stringstream buffer;
    ASSERT_TRUE(SaveLearner(first_half, buffer).ok()) << MethodName(m);
    Result<Learner> resumed = LoadLearner(buffer, Opts(37));
    ASSERT_TRUE(resumed.ok()) << MethodName(m);
    resumed.value().UpdateBatch(std::span<const Example>(stream.data() + 1000, 1000));

    for (uint32_t f = 0; f < 4096; f += 11) {
      EXPECT_EQ(resumed.value().WeightEstimate(f), straight.WeightEstimate(f))
          << MethodName(m) << " feature " << f;
    }
  }
}

}  // namespace
}  // namespace wmsketch
