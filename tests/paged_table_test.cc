// Unit tests for the copy-on-write paged table storage (util/paged_table.h):
// page sizing, dirty tracking via epoch tags, publish-time sharing vs
// copying, clone page sharing, and snapshot immutability.

#include "util/paged_table.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/simd.h"

namespace wmsketch {
namespace {

bool IsPow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

TEST(PagedTableTest, PageSizingIsPowerOfTwoWithinBounds) {
  for (const size_t cells : {size_t{1}, size_t{64}, size_t{768}, size_t{4096},
                             size_t{196608}, size_t{1} << 22}) {
    const size_t pc = PickPageCells(cells);
    EXPECT_TRUE(IsPow2(pc)) << cells;
    EXPECT_GE(pc, 64u) << cells;
    EXPECT_LE(pc, 4096u) << cells;
  }
  // Power-of-two pages subdivide power-of-two rows evenly (or hold whole
  // rows): a page never straddles a row boundary.
  const size_t pc = PickPageCells(196608);  // width 65536 x depth 3
  EXPECT_TRUE(65536 % pc == 0 || pc % 65536 == 0);
}

TEST(PagedTableTest, ViewMatchesArenaByteForByte) {
  PagedTable t(1000);  // not a multiple of the page size: padded tail
  for (size_t i = 0; i < t.size(); ++i) t.data()[i] = static_cast<float>(i) * 0.5f;
  const PageSet<float> pages = t.SharePages();
  ASSERT_EQ(pages.cells(), 1000u);
  for (size_t i = 0; i < t.size(); ++i) {
    const float a = t.data()[i];
    const float b = pages.view().At(i);
    EXPECT_EQ(0, std::memcmp(&a, &b, sizeof(float))) << i;
  }
}

TEST(PagedTableTest, FirstPublishCopiesAllLaterPublishesCopyDirtyOnly) {
  PagedTable t(4096);
  const size_t pages = t.num_pages();
  ASSERT_GE(pages, 2u);

  const PageSet<float> s1 = t.SharePages();
  EXPECT_EQ(t.publish_stats().publishes, 1u);
  EXPECT_EQ(t.publish_stats().copied_pages, pages);  // nothing shared yet

  // No writes: the second publish shares everything.
  const PageSet<float> s2 = t.SharePages();
  EXPECT_EQ(t.publish_stats().copied_pages, pages);
  EXPECT_EQ(t.publish_stats().shared_pages, pages);

  // Dirty exactly one page: the third publish copies exactly one.
  t.MarkDirtyOffset(0);
  t.data()[0] = 42.0f;
  const PageSet<float> s3 = t.SharePages();
  EXPECT_EQ(t.publish_stats().copied_pages, pages + 1);
  EXPECT_EQ(t.publish_stats().shared_pages, 2 * pages - 1);

  // Clean pages are physically shared: same page base pointers.
  EXPECT_EQ(s2.view().pages[1], s3.view().pages[1]);
  // The dirtied page diverged.
  EXPECT_NE(s2.view().pages[0], s3.view().pages[0]);
}

TEST(PagedTableTest, SnapshotsAreImmutableUnderLaterWrites) {
  PagedTable t(512);
  t.MarkDirtyOffset(7);
  t.data()[7] = 1.0f;
  const PageSet<float> snap = t.SharePages();
  t.MarkDirtyOffset(7);
  t.data()[7] = 2.0f;
  EXPECT_EQ(snap.view().At(7), 1.0f);
  EXPECT_EQ(t.data()[7], 2.0f);
  const PageSet<float> snap2 = t.SharePages();
  EXPECT_EQ(snap.view().At(7), 1.0f);  // still pinned at its version
  EXPECT_EQ(snap2.view().At(7), 2.0f);
}

TEST(PagedTableTest, MarkPlanDirtyCoversExactlyTheTouchedPages) {
  PagedTable t(4096);
  const size_t pages = t.num_pages();
  (void)t.SharePages();  // enable tracking; everything now clean
  const uint32_t pc = static_cast<uint32_t>(t.page_cells());
  // Touch two distinct pages through a fake plan.
  const uint32_t offsets[3] = {0, 1, pc};  // page 0 twice, page 1 once
  t.MarkPlanDirty(offsets, 3);
  const uint64_t copied_before = t.publish_stats().copied_pages;
  (void)t.SharePages();
  EXPECT_EQ(t.publish_stats().copied_pages - copied_before, 2u);
  EXPECT_EQ(t.publish_stats().shared_pages, pages - 2);
}

TEST(PagedTableTest, MarkingBeforeFirstPublishIsFreeAndHarmless) {
  PagedTable t(4096);
  // No publish yet: marks are no-ops (nothing is shared to diverge from).
  t.MarkDirtyOffset(0);
  t.MarkAllDirty();
  EXPECT_EQ(t.publish_stats().publishes, 0u);
  (void)t.SharePages();
  EXPECT_EQ(t.publish_stats().copied_pages, t.num_pages());
}

TEST(PagedTableTest, CloneSharesCleanPagesWithTheOriginal) {
  PagedTable a(4096);
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(i);
  const PageSet<float> sa = a.SharePages();

  PagedTable b = a;  // clone
  // The clone's first publish re-shares the original's clean mirrors: zero
  // new copies, identical page pointers.
  const uint64_t copied_before = b.publish_stats().copied_pages;
  const PageSet<float> sb = b.SharePages();
  EXPECT_EQ(b.publish_stats().copied_pages, copied_before);
  for (size_t p = 0; p < a.num_pages(); ++p) {
    EXPECT_EQ(sa.view().pages[p], sb.view().pages[p]) << p;
  }

  // Divergence after cloning COWs only the clone's dirtied page, and the
  // original never sees it.
  b.MarkDirtyOffset(0);
  b.data()[0] = -1.0f;
  const PageSet<float> sb2 = b.SharePages();
  EXPECT_EQ(sb2.view().At(0), -1.0f);
  EXPECT_EQ(sa.view().At(0), 0.0f);
  EXPECT_EQ(a.data()[0], 0.0f);
  EXPECT_NE(sb2.view().pages[0], sa.view().pages[0]);
  EXPECT_EQ(sb2.view().pages[1], sa.view().pages[1]);
}

TEST(PagedTableTest, FillMarksEverythingDirty) {
  PagedTable t(1024);
  (void)t.SharePages();
  t.Fill(3.5f);
  const uint64_t copied_before = t.publish_stats().copied_pages;
  const PageSet<float> s = t.SharePages();
  EXPECT_EQ(t.publish_stats().copied_pages - copied_before, t.num_pages());
  EXPECT_EQ(s.view().At(1023), 3.5f);
}

TEST(PagedTableTest, DoubleTableWorksTheSameWay) {
  BasicPagedTable<double> t(300);
  t.data()[299] = 2.25;
  const PageSet<double> s = t.SharePages();
  EXPECT_EQ(s.view().At(299), 2.25);
  t.MarkDirtyOffset(299);
  t.data()[299] = 4.5;
  EXPECT_EQ(s.view().At(299), 2.25);
}

// Randomized read equivalence: every paged read kernel must see exactly the
// cells a flat copy of the table holds, bit for bit, for plans that straddle
// page boundaries — the offsets where the page-pointer walk (pages[off >>
// shift] + (off & mask)) is easiest to get wrong by one. Runs on both the
// scalar and (where the CPU has them) AVX2 paths.
TEST(PagedTableTest, RandomizedPagedReadsMatchFlatAcrossPageBoundaries) {
  constexpr size_t kCells = 5000;  // padded tail: last page partly out of range
  PagedTable t(kCells);
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng]() {
    rng += 0x9E3779B97F4A7C15ull;
    uint64_t z = rng;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  for (size_t i = 0; i < t.size(); ++i) {
    // Mixed magnitudes plus ±0 cells: the fused median's compare+blend swaps
    // must treat signed-zero ties exactly as std::min/std::max do.
    t.data()[i] = (i % 67 == 0) ? ((i % 134 == 0) ? 0.0f : -0.0f)
                                : (static_cast<float>(next() % 2048) - 1024.0f) * 0.03125f;
  }
  const PageSet<float> snap = t.SharePages();
  const PagedView<float> view = snap.view();
  const uint32_t pc = static_cast<uint32_t>(t.page_cells());
  ASSERT_GE(t.num_pages(), 2u);

  const bool had_simd = simd::Enabled();
  for (const bool simd_on : {false, true}) {
    simd::SetEnabled(simd_on);
    if (simd_on && !simd::Enabled()) continue;  // no AVX2 on this machine
    for (const uint32_t depth : {1u, 3u, 5u, 7u}) {
      for (const size_t keys : {size_t{1}, size_t{9}, size_t{64}, size_t{257}}) {
        const size_t entries = keys * depth;
        std::vector<uint32_t> offsets(entries);
        std::vector<float> signs(entries);
        for (size_t e = 0; e < entries; ++e) {
          // Three in four entries hug a page boundary (pc-2 .. pc+1 within
          // some page); the rest land anywhere in the table.
          if (e % 4 != 0) {
            const uint32_t page = static_cast<uint32_t>(next() % (t.num_pages() - 1));
            const uint32_t near = static_cast<uint32_t>(next() % 4);
            offsets[e] = std::min<uint32_t>(page * pc + (pc - 2) + near,
                                            static_cast<uint32_t>(kCells - 1));
          } else {
            offsets[e] = static_cast<uint32_t>(next() % kCells);
          }
          signs[e] = (next() & 1) ? 1.0f : -1.0f;
        }

        // GatherSignedPaged vs GatherSigned over the flat backing array.
        std::vector<float> flat(entries), paged(entries);
        simd::GatherSigned(t.data(), offsets.data(), signs.data(), entries, flat.data());
        simd::GatherSignedPaged(view.pages, view.shift, view.mask, offsets.data(),
                                signs.data(), entries, paged.data());
        ASSERT_EQ(0, std::memcmp(flat.data(), paged.data(), entries * sizeof(float)))
            << "simd=" << simd_on << " depth=" << depth << " keys=" << keys;

        // Fused paged median vs flat fused median vs first principles.
        const double factor = 1.0 / 3.0;
        std::vector<float> med_flat(keys), med_paged(keys);
        simd::GatherMedianFused(t.data(), offsets.data(), signs.data(), keys, depth,
                                factor, med_flat.data());
        simd::GatherMedianFusedPaged(view.pages, view.shift, view.mask, offsets.data(),
                                     signs.data(), keys, depth, factor, med_paged.data());
        ASSERT_EQ(0, std::memcmp(med_flat.data(), med_paged.data(), keys * sizeof(float)))
            << "simd=" << simd_on << " depth=" << depth << " keys=" << keys;
        for (size_t k = 0; k < keys; ++k) {
          float lanes[7];
          for (uint32_t j = 0; j < depth; ++j) lanes[j] = paged[k * depth + j];
          const float want =
              static_cast<float>(factor * static_cast<double>(MedianInPlace(lanes, depth)));
          ASSERT_EQ(0, std::memcmp(&want, &med_paged[k], sizeof(float)))
              << "simd=" << simd_on << " depth=" << depth << " key=" << k;
        }

        // PlanMarginPaged vs PlanMargin over the flat backing array.
        std::vector<float> values(keys), scratch(entries);
        for (size_t k = 0; k < keys; ++k) {
          values[k] = (static_cast<float>(next() % 512) - 256.0f) * 0.0625f;
        }
        simd::PlanView plan{offsets.data(), signs.data(), keys, depth};
        const double m_flat =
            simd::PlanMargin(t.data(), plan, values.data(), scratch.data());
        const double m_paged = simd::PlanMarginPaged(
            view.pages, view.shift, view.mask, plan, values.data(), scratch.data());
        ASSERT_EQ(0, std::memcmp(&m_flat, &m_paged, sizeof(double)))
            << "simd=" << simd_on << " depth=" << depth << " keys=" << keys;
      }
    }
  }
  simd::SetEnabled(had_simd);
}

TEST(PagedTableTest, ResidentAccounting) {
  PagedTable t(4096);
  const PageSet<float> s = t.SharePages();
  EXPECT_EQ(s.ResidentBytes(),
            t.num_pages() * (t.page_cells() * sizeof(float) + kBytesPerPageMeta));
  EXPECT_EQ(t.MetadataBytes(), t.num_pages() * kBytesPerPageMeta);
  EXPECT_EQ(PagedTableBytes(t.size(), t.num_pages()),
            t.size() * 4 + t.num_pages() * kBytesPerPageMeta);
}

}  // namespace
}  // namespace wmsketch
