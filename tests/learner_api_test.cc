// Tests for the public Learner facade: builder validation (every invalid
// shape yields a distinct typed error), batch-update equivalence with the
// example-at-a-time path, and immutability of query snapshots.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "core/multiclass.h"
#include "datagen/classification_gen.h"
#include "util/memory_cost.h"
#include "util/random.h"

namespace wmsketch {
namespace {

Learner Build(LearnerBuilder builder) {
  Result<Learner> built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

LearnerBuilder StandardBuilder(Method method, uint64_t seed = 42) {
  return LearnerBuilder()
      .SetMethod(method)
      .SetLambda(1e-4)
      .SetLearningRate(LearningRate::Constant(0.2))
      .SetSeed(seed);
}

std::vector<Example> MakeStream(int n, uint64_t seed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

// ---------------------------------------------------------------- builder

TEST(LearnerBuilderTest, BudgetPlannedConstructionWorksForEveryMethod) {
  for (const Method m : AllMethods()) {
    Result<Learner> built = StandardBuilder(m).SetBudgetBytes(KiB(4)).Build();
    ASSERT_TRUE(built.ok()) << MethodName(m) << ": " << built.status().ToString();
    EXPECT_EQ(built.value().method(), m);
    EXPECT_EQ(built.value().Name(), MethodName(m));
    EXPECT_LE(built.value().MemoryCostBytes(), KiB(4)) << MethodName(m);
    EXPECT_EQ(built.value().steps(), 0u);
  }
}

TEST(LearnerBuilderTest, ExplicitShapeConstructionWorks) {
  Learner awm = Build(StandardBuilder(Method::kAwmSketch)
                          .SetWidth(256)
                          .SetDepth(1)
                          .SetHeapCapacity(64));
  EXPECT_EQ(awm.config().width, 256u);
  EXPECT_EQ(awm.config().depth, 1u);
  EXPECT_EQ(awm.config().heap_capacity, 64u);

  Learner trun = Build(StandardBuilder(Method::kSimpleTruncation).SetHeapCapacity(32));
  EXPECT_EQ(trun.config().heap_capacity, 32u);

  Learner hash = Build(StandardBuilder(Method::kFeatureHashing).SetWidth(512));
  EXPECT_EQ(hash.config().width, 512u);
}

TEST(LearnerBuilderTest, EachInvalidShapeYieldsItsDistinctErrorCode) {
  struct Case {
    const char* name;
    Result<Learner> result;
    ConfigError expected;
  };
  Case cases[] = {
      {"width not a power of two",
       StandardBuilder(Method::kWmSketch).SetWidth(100).SetDepth(2).SetHeapCapacity(8).Build(),
       ConfigError::kWidthNotPowerOfTwo},
      {"zero depth",
       StandardBuilder(Method::kWmSketch).SetWidth(128).SetDepth(0).SetHeapCapacity(8).Build(),
       ConfigError::kDepthZero},
      {"depth above the cap",
       StandardBuilder(Method::kWmSketch).SetWidth(128).SetDepth(65).SetHeapCapacity(8).Build(),
       ConfigError::kDepthTooLarge},
      {"empty active set for AWM",
       StandardBuilder(Method::kAwmSketch).SetWidth(128).SetDepth(1).SetHeapCapacity(0).Build(),
       ConfigError::kActiveSetEmpty},
      {"budget below 1 KiB",
       StandardBuilder(Method::kAwmSketch).SetBudgetBytes(512).Build(),
       ConfigError::kBudgetTooSmall},
      {"no size at all", StandardBuilder(Method::kAwmSketch).Build(),
       ConfigError::kShapeUnderspecified},
      {"budget combined with explicit shape",
       StandardBuilder(Method::kAwmSketch).SetBudgetBytes(KiB(2)).SetWidth(128).Build(),
       ConfigError::kShapeConflict},
  };
  std::set<uint16_t> seen;
  for (const Case& c : cases) {
    ASSERT_FALSE(c.result.ok()) << c.name;
    EXPECT_EQ(c.result.status().detail(), ToDetail(c.expected)) << c.name;
    seen.insert(c.result.status().detail());
  }
  // The codes really are distinct, so callers can dispatch on detail().
  EXPECT_EQ(seen.size(), std::size(cases));
}

TEST(LearnerBuilderTest, ZeroWidthReadsAsNotPowerOfTwo) {
  Result<Learner> r =
      StandardBuilder(Method::kFeatureHashing).SetWidth(0).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().detail(), ToDetail(ConfigError::kWidthNotPowerOfTwo));
}

TEST(LearnerBuilderTest, ShapeKnobsForeignToTheMethodConflict) {
  // Truncation has no sketch table.
  Result<Learner> r1 =
      StandardBuilder(Method::kSimpleTruncation).SetHeapCapacity(16).SetWidth(64).Build();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().detail(), ToDetail(ConfigError::kShapeConflict));
  // Feature hashing has no heap.
  Result<Learner> r2 =
      StandardBuilder(Method::kFeatureHashing).SetWidth(64).SetHeapCapacity(16).Build();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().detail(), ToDetail(ConfigError::kShapeConflict));
}

TEST(LearnerBuilderTest, SetConfigConflictsAreDetected) {
  BudgetConfig cfg = DefaultConfig(Method::kWmSketch, KiB(2)).value();
  Result<Learner> r1 = LearnerBuilder().SetConfig(cfg).SetBudgetBytes(KiB(2)).Build();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().detail(), ToDetail(ConfigError::kShapeConflict));
  Result<Learner> r2 =
      LearnerBuilder().SetMethod(Method::kAwmSketch).SetConfig(cfg).Build();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().detail(), ToDetail(ConfigError::kShapeConflict));
  // Consistent method + config is fine.
  EXPECT_TRUE(LearnerBuilder().SetMethod(Method::kWmSketch).SetConfig(cfg).Build().ok());
}

TEST(LearnerBuilderTest, BuilderIsReusable) {
  const LearnerBuilder base =
      StandardBuilder(Method::kAwmSketch).SetBudgetBytes(KiB(2));
  Learner a = Build(base);
  Learner b = Build(base);
  EXPECT_EQ(a.config().width, b.config().width);
  a.Update(Example{SparseVector::OneHot(3), 1});
  EXPECT_EQ(a.steps(), 1u);
  EXPECT_EQ(b.steps(), 0u);  // independent instances
}

// ------------------------------------------------------------ batch path

// UpdateBatch must be bitwise-equivalent to a loop of Update on a fixed
// seed; checked for WM and AWM per the API contract, plus every other
// method for good measure.
TEST(LearnerBatchTest, UpdateBatchBitwiseEquivalentToLoop) {
  const std::vector<Example> stream = MakeStream(3000, 11);
  const std::vector<Example> held_out = MakeStream(200, 12);
  for (const Method m : AllMethods()) {
    Learner one_by_one = Build(StandardBuilder(m, 7).SetBudgetBytes(KiB(2)));
    Learner batched = Build(StandardBuilder(m, 7).SetBudgetBytes(KiB(2)));
    for (const Example& ex : stream) one_by_one.Update(ex);
    batched.UpdateBatch(stream);

    EXPECT_EQ(one_by_one.steps(), batched.steps()) << MethodName(m);
    for (const Example& ex : held_out) {
      EXPECT_EQ(one_by_one.PredictMargin(ex.x), batched.PredictMargin(ex.x))
          << MethodName(m);
    }
    for (uint32_t f = 0; f < 2048; f += 7) {
      EXPECT_EQ(one_by_one.WeightEstimate(f), batched.WeightEstimate(f))
          << MethodName(m) << " feature " << f;
    }
    const auto top_a = one_by_one.Snapshot(32).top_k();
    const auto top_b = batched.Snapshot(32).top_k();
    ASSERT_EQ(top_a.size(), top_b.size()) << MethodName(m);
    for (size_t i = 0; i < top_a.size(); ++i) EXPECT_EQ(top_a[i], top_b[i]) << MethodName(m);
  }
}

TEST(LearnerBatchTest, BatchWithMarginsMatchesProgressiveValidation) {
  const std::vector<Example> stream = MakeStream(500, 21);
  Learner a = Build(StandardBuilder(Method::kAwmSketch, 5).SetBudgetBytes(KiB(2)));
  Learner b = Build(StandardBuilder(Method::kAwmSketch, 5).SetBudgetBytes(KiB(2)));
  std::vector<double> loop_margins, batch_margins;
  for (const Example& ex : stream) loop_margins.push_back(a.Update(ex));
  b.UpdateBatch(stream, &batch_margins);
  ASSERT_EQ(loop_margins.size(), batch_margins.size());
  for (size_t i = 0; i < loop_margins.size(); ++i) {
    EXPECT_EQ(loop_margins[i], batch_margins[i]) << i;
  }
}

TEST(LearnerBatchTest, MulticlassBatchMatchesLoop) {
  const BudgetConfig cfg = DefaultConfig(Method::kAwmSketch, KiB(2)).value();
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = 31;
  MulticlassClassifier loop(4, cfg, opts);
  MulticlassClassifier batched(4, cfg, opts);

  Rng rng(33);
  std::vector<MulticlassExample> stream;
  for (int i = 0; i < 1500; ++i) {
    const uint32_t f = static_cast<uint32_t>(rng.Bounded(1024));
    stream.push_back(MulticlassExample{SparseVector::OneHot(f), f % 4});
  }
  for (const MulticlassExample& ex : stream) loop.Update(ex.x, ex.label);
  batched.UpdateBatch(stream);
  for (uint32_t f = 0; f < 1024; f += 3) {
    EXPECT_EQ(loop.PredictClass(SparseVector::OneHot(f)),
              batched.PredictClass(SparseVector::OneHot(f)));
  }
}

// -------------------------------------------------------------- snapshot

TEST(LearnerSnapshotTest, SnapshotIsImmutableUnderContinuedTraining) {
  const std::vector<Example> stream = MakeStream(4000, 41);
  Learner learner = Build(StandardBuilder(Method::kAwmSketch, 9).SetBudgetBytes(KiB(2)));
  learner.UpdateBatch(std::span<const Example>(stream.data(), 2000));

  const LearnerSnapshot snap = learner.Snapshot(64);
  const std::vector<FeatureWeight> frozen_top = snap.top_k();
  std::vector<float> frozen_estimates;
  for (uint32_t f = 0; f < 512; ++f) frozen_estimates.push_back(snap.Estimate(f));
  const uint64_t frozen_steps = snap.steps();

  // A copy shares the same frozen state.
  const LearnerSnapshot copy = snap;  // NOLINT(performance-unnecessary-copy-initialization)

  learner.UpdateBatch(std::span<const Example>(stream.data() + 2000, 2000));

  EXPECT_EQ(snap.steps(), frozen_steps);
  EXPECT_EQ(learner.steps(), frozen_steps + 2000);
  ASSERT_EQ(snap.top_k().size(), frozen_top.size());
  for (size_t i = 0; i < frozen_top.size(); ++i) {
    EXPECT_EQ(snap.top_k()[i], frozen_top[i]);
    EXPECT_EQ(copy.top_k()[i], frozen_top[i]);
  }
  int diverged = 0;
  for (uint32_t f = 0; f < 512; ++f) {
    EXPECT_EQ(snap.Estimate(f), frozen_estimates[f]) << f;
    EXPECT_EQ(copy.Estimate(f), frozen_estimates[f]) << f;
    diverged += (learner.WeightEstimate(f) != frozen_estimates[f]);
  }
  // The live model kept moving; the snapshot did not.
  EXPECT_GT(diverged, 0);
}

TEST(LearnerSnapshotTest, EstimatesMatchLiveModelAtCaptureTime) {
  const std::vector<Example> stream = MakeStream(2000, 51);
  for (const Method m : AllMethods()) {
    Learner learner = Build(StandardBuilder(m, 13).SetBudgetBytes(KiB(2)));
    learner.UpdateBatch(stream);
    const LearnerSnapshot snap = learner.Snapshot(32);
    for (uint32_t f = 0; f < 2048; f += 5) {
      EXPECT_EQ(snap.Estimate(f), learner.WeightEstimate(f))
          << MethodName(m) << " feature " << f;
    }
    EXPECT_EQ(snap.steps(), learner.steps());
    EXPECT_EQ(snap.memory_cost_bytes(), learner.MemoryCostBytes());
    EXPECT_EQ(snap.method(), m);
  }
}

TEST(LearnerSnapshotTest, ScanTopKRanksHashedModels) {
  const std::vector<Example> stream = MakeStream(2000, 61);
  Learner hash = Build(StandardBuilder(Method::kFeatureHashing, 15).SetBudgetBytes(KiB(2)));
  hash.UpdateBatch(stream);
  const LearnerSnapshot snap = hash.Snapshot(16);
  EXPECT_TRUE(snap.top_k().empty());  // no identifiers stored
  const auto scanned =
      snap.ScanTopK(16, ClassificationProfile::SmallTest().dimension);
  ASSERT_EQ(scanned.size(), 16u);
  // Descending magnitude, and every weight agrees with the frozen estimator.
  for (size_t i = 1; i < scanned.size(); ++i) {
    EXPECT_GE(std::fabs(scanned[i - 1].weight), std::fabs(scanned[i].weight));
  }
  for (const FeatureWeight& fw : scanned) {
    EXPECT_EQ(fw.weight, snap.Estimate(fw.feature));
  }
}

}  // namespace
}  // namespace wmsketch
