#include <cstddef>
namespace simd {
void PlanScatter(float*, const void*, const float*, double, float*);
void ScaleTable(float*, std::size_t, float);
}  // namespace simd
struct Table {
  float* data();
  std::size_t size() const;
  void MarkPlanDirty(const unsigned*, std::size_t);
  void MarkDirtyOffset(std::size_t);
  void MarkAllDirty();
  void Fill(float);
};
struct Model {
  Table table_;
  float* Row(unsigned j);
  void ScatterWithMark(const void* plan, const float* values, float* scratch) {
    table_.MarkPlanDirty(nullptr, 0);
    simd::PlanScatter(table_.data(), plan, values, 0.5, scratch);
  }
  void PointWriteWithMark(unsigned j, unsigned bucket, float delta) {
    table_.MarkDirtyOffset(bucket);
    Row(j)[bucket] += delta;
  }
  void SweepWithMark(float factor) {
    table_.MarkAllDirty();
    simd::ScaleTable(table_.data(), table_.size(), factor);
  }
  void Clear() { table_.Fill(0.0f); }  // Fill marks internally
};
