#include <cstddef>
struct Table {
  float* data();
};
struct Model {
  Table table_;
  void AliasWriteNoMark(const unsigned* offsets, std::size_t n, float delta) {
    float* tbl = table_.data();
    for (std::size_t i = 0; i < n; ++i) tbl[offsets[i]] -= delta;
  }
};
