#include <cstddef>
namespace simd {
void ScaleTable(float*, std::size_t, float);
}  // namespace simd
struct Table {
  float* data();
  std::size_t size() const;
};
struct Model {
  Table table_;
  float* Row(unsigned j);
  void PointWriteNoMark(unsigned j, unsigned bucket, float delta) {
    Row(j)[bucket] += delta;  // no MarkDirty*: snapshot serves stale pages
  }
  void SweepNoMark(float factor) {
    simd::ScaleTable(table_.data(), table_.size(), factor);
  }
};
