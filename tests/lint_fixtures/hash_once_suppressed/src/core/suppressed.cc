struct Hash {
  void BucketAndSign(unsigned key, unsigned* bucket, float* sign) const;
};
float Suppressed(const Hash& h, unsigned key, const float* table) {
  unsigned bucket;
  float sign;
  h.BucketAndSign(key, &bucket, &sign);  // wms-lint: allow(hash-once): fixture reason
  return sign * table[bucket];
}
