// wms-lint: simd-kernel-table begin
constexpr const char* const kAvx2KernelBitIdentityCoverage[] = {
    "Crc32cDemoSse42",
};
// wms-lint: simd-kernel-table end
