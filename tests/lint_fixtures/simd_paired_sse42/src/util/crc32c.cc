__attribute__((target("sse4.2"))) unsigned Crc32cDemoSse42(unsigned s, int n) {
  return s + static_cast<unsigned>(n);
}
__attribute__((target("sse4.2"))) unsigned UnregisteredCrcSse42(unsigned s, int n) {
  return s * static_cast<unsigned>(n);
}
