struct Hash {
  void BucketAndSign(unsigned key, unsigned* bucket, float* sign) const;
};
float ReadTwice(const Hash& h, unsigned key, const float* table) {
  unsigned bucket;
  float sign;
  h.BucketAndSign(key, &bucket, &sign);
  const float a = sign * table[bucket];
  h.BucketAndSign(key + 1, &bucket, &sign);  // second site: over the ratchet
  return a + sign * table[bucket];
}
