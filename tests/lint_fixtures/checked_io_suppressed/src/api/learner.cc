// Fixture: a raw call carrying an inline suppression with a reason — clean.
#include <ostream>

namespace wmsketch {

void SaveDemo(std::ostream& out, unsigned n) {
  // clang-format off
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));  // wms-lint: allow(checked-io): audited 4-byte header
  // clang-format on
}

}  // namespace wmsketch
