// Fixture: all snapshot IO flows through the checked helpers — clean.
#include <ostream>

namespace wmsketch {

void SaveDemo(std::ostream& out, const float* cells, unsigned n) {
  snapshot::WriteRaw(out, n);
  snapshot::WriteBytes(out, cells, n * sizeof(float));
}

bool LoadDemo(snapshot::SnapshotReader& in, float* cells, unsigned n) {
  // ReadExactRaw is the checked counterpart of istream::read.
  return in.ReadExactRaw(reinterpret_cast<char*>(cells), n * sizeof(float));
}

}  // namespace wmsketch
