struct Hash {
  void BucketAndSign(unsigned key, unsigned* bucket, float* sign) const;
};
float FusedSingleKeyRead(const Hash& h, unsigned key, const float* table) {
  unsigned bucket;
  float sign;
  h.BucketAndSign(key, &bucket, &sign);
  return sign * table[bucket];
}
