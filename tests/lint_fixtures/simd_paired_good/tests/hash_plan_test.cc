// wms-lint: simd-kernel-table begin
constexpr const char* const kAvx2KernelBitIdentityCoverage[] = {
    "DemoKernelAvx2",
};
// wms-lint: simd-kernel-table end
