// Fixture: raw stream IO in a checked-io file — two findings.
#include <istream>
#include <ostream>

namespace wmsketch {

void SaveDemo(std::ostream& out, const float* cells, unsigned n) {
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
}

bool LoadDemo(std::istream& in, float* cells, unsigned n) {
  in.read(reinterpret_cast<char*>(cells), n * sizeof(float));
  return static_cast<bool>(in);
}

}  // namespace wmsketch
