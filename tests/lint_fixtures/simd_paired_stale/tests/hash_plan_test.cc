// wms-lint: simd-kernel-table begin
constexpr const char* const kAvx2KernelBitIdentityCoverage[] = {
    "DemoKernelAvx2",
    "RemovedKernelAvx2",
};
// wms-lint: simd-kernel-table end
