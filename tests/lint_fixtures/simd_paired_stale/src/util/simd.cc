__attribute__((target("avx2,fma"))) void DemoKernelAvx2(float* t, int n) {
  for (int i = 0; i < n; ++i) t[i] += 1.0f;
}
