// A hot path that consumes a pre-built plan instead of re-hashing.
struct Plan {
  const unsigned* offsets;
  unsigned entries;
};
float Consume(const Plan& plan, const float* table) {
  float acc = 0.0f;
  for (unsigned k = 0; k < plan.entries; ++k) acc += table[plan.offsets[k]];
  return acc;
}
