// Hash implementations may define and call BucketAndSign freely.
#pragma once
struct MyHash {
  void BucketAndSign(unsigned key, unsigned* bucket, float* sign) const {
    *bucket = key & 7u;
    *sign = 1.0f;
  }
};
inline void Helper(const MyHash& h, unsigned k, unsigned* b, float* s) {
  h.BucketAndSign(k, b, s);  // inside src/hash/: allowed
}
