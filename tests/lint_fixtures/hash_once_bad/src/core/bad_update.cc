struct Hash {
  void BucketAndSign(unsigned key, unsigned* bucket, float* sign) const;
};
float ReHashingUpdate(const Hash& h, const unsigned* keys, unsigned n,
                      const float* table) {
  float acc = 0.0f;
  for (unsigned i = 0; i < n; ++i) {
    unsigned bucket;
    float sign;
    h.BucketAndSign(keys[i], &bucket, &sign);  // forbidden outside src/hash/
    acc += sign * table[bucket];
  }
  return acc;
}
