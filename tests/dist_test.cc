// Tests for the distributed training tier (src/dist/ + core/delta_io):
// dirty-page deltas reproduce the sender byte-for-byte, the merge handshake
// rejects every incompatible identity dimension with zero aggregator
// mutation, CRC-corrupt frames drop the connection without touching state,
// a multi-worker merge is byte-identical to the sequential reference, and an
// aggregator restart forces a reconnect + re-handshake + full resync.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "core/delta_io.h"
#include "core/snapshot_io.h"
#include "datagen/classification_gen.h"
#include "dist/aggregator.h"
#include "dist/frame.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/memory_cost.h"

namespace wmsketch {
namespace {

namespace fs = std::filesystem;
using dist::Aggregator;
using dist::AggregatorOptions;
using dist::SyncClient;
using dist::SyncClientOptions;

LearnerOptions Opts() {
  LearnerOptions opts;
  opts.lambda = 1e-4;
  opts.rate = LearningRate::Constant(0.2);
  opts.seed = 42;
  return opts;
}

LearnerBuilder Builder(Method method = Method::kAwmSketch) {
  return LearnerBuilder()
      .SetMethod(method)
      .SetBudgetBytes(KiB(2))
      .SetLambda(1e-4)
      .SetLearningRate(LearningRate::Constant(0.2))
      .SetSeed(42);
}

// A builder pinned to an explicit shape (SetConfig conflicts with the
// budget-planned Builder() above, so these start from scratch).
LearnerBuilder FromConfig(const BudgetConfig& config) {
  return LearnerBuilder()
      .SetConfig(config)
      .SetLambda(1e-4)
      .SetLearningRate(LearningRate::Constant(0.2))
      .SetSeed(42);
}

void Train(Learner& learner, int examples, uint64_t seed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> stream;
  stream.reserve(examples);
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());
  learner.UpdateBatch(stream);
}

std::string Bytes(Method method, const BudgetedClassifier& impl) {
  std::ostringstream buffer(std::ios::binary);
  EXPECT_TRUE(SaveClassifier(method, impl, buffer).ok());
  return std::move(buffer).str();
}

// Unix socket paths are capped at ~107 bytes, so keep them short and unique.
std::string UniqueSocket(const std::string& name) {
  const std::string path = "/tmp/wms_dist_" + name + "_" + std::to_string(::getpid());
  ::unlink(path.c_str());
  return path;
}

std::string UniqueDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "wms_dist_" + name;
  fs::remove_all(dir);
  return dir;
}

// An aggregator served from a background thread; all assertions on the
// aggregator happen after Stop() joins the serving thread.
class ServingAggregator {
 public:
  ServingAggregator(const AggregatorOptions& options, const std::string& socket_path)
      : path_(socket_path) {
    Result<Aggregator> created = Aggregator::Create(options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (!created.ok()) return;
    agg_.emplace(std::move(created).value());
    EXPECT_TRUE(agg_->Bind(socket_path).ok());
    thread_ = std::thread([this] { serve_status_ = agg_->ServeUntilShutdown(); });
  }

  ~ServingAggregator() { Stop(); }

  // Sends kShutdown (via a throwaway client) and joins the serving thread.
  void Stop() {
    if (!thread_.joinable()) return;
    SyncClientOptions copts;
    copts.worker_id = 999;
    copts.socket_path = socket_path();
    SyncClient stopper(Method::kAwmSketch, copts);
    EXPECT_TRUE(stopper.SendShutdown().ok());
    thread_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  Aggregator& agg() { return *agg_; }
  const std::string& socket_path() const { return path_; }

 private:
  std::optional<Aggregator> agg_;
  std::thread thread_;
  std::string path_;
  Status serve_status_;
};

AggregatorOptions AggOpts(const BudgetConfig& config) {
  AggregatorOptions options;
  options.config = config;
  options.opts = Opts();
  options.io_timeout_ms = 5000;
  return options;
}

SyncClientOptions ClientOpts(uint64_t worker_id, const std::string& socket_path) {
  SyncClientOptions copts;
  copts.worker_id = worker_id;
  copts.socket_path = socket_path;
  copts.max_retries = 4;
  copts.base_backoff_ms = 5;
  copts.max_backoff_ms = 100;
  copts.io_timeout_ms = 5000;
  return copts;
}

class DistTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// ---------------------------------------------------------- delta codec

TEST_F(DistTest, DeltaReproducesSenderByteForByte) {
  for (const Method method : {Method::kWmSketch, Method::kAwmSketch}) {
    Result<Learner> built = Builder(method).Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Learner learner = std::move(built).value();
    Train(learner, 200, 7);

    // Replica captured at the watermark; the delta must carry it to the
    // sender's exact final state.
    Result<uint64_t> window = BeginDeltaWindow(method, learner.impl());
    ASSERT_TRUE(window.ok()) << window.status().ToString();
    std::unique_ptr<BudgetedClassifier> replica = learner.impl().Clone();
    Train(learner, 300, 11);

    std::ostringstream delta(std::ios::binary);
    DeltaStats stats;
    ASSERT_TRUE(SaveDelta(method, learner.impl(), window.value(), delta, &stats).ok());
    EXPECT_GT(stats.pages_shipped, 0u);
    EXPECT_LE(stats.pages_shipped, stats.pages_total);

    const std::string payload = std::move(delta).str();
    snapshot::SnapshotReader reader{std::string_view(payload)};
    ASSERT_TRUE(ApplyDelta(method, *replica, reader).ok());
    EXPECT_EQ(Bytes(method, *replica), Bytes(method, learner.impl()))
        << MethodName(method);
  }
}

TEST_F(DistTest, SecondWindowShipsOnlyDirtyPages) {
  // A wide depth-1 sketch spans many pages; a single extra example after the
  // first sync dirties only a handful of them.
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(Method::kAwmSketch)
                              .SetWidth(16384)
                              .SetDepth(1)
                              .SetHeapCapacity(64)
                              .SetLambda(1e-4)
                              .SetLearningRate(LearningRate::Constant(0.2))
                              .SetSeed(42)
                              .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Learner learner = std::move(built).value();
  Train(learner, 500, 3);

  Result<uint64_t> window = BeginDeltaWindow(learner.method(), learner.impl());
  ASSERT_TRUE(window.ok());
  Train(learner, 1, 5);

  std::ostringstream delta(std::ios::binary);
  DeltaStats stats;
  ASSERT_TRUE(
      SaveDelta(learner.method(), learner.impl(), window.value(), delta, &stats).ok());
  EXPECT_GT(stats.pages_total, 8u);
  EXPECT_GT(stats.pages_shipped, 0u);
  EXPECT_LT(stats.pages_shipped, stats.pages_total / 2)
      << "one example should dirty a small fraction of a 16K-cell table";
}

TEST_F(DistTest, TruncatedDeltaLeavesReplicaUntouched) {
  Result<Learner> built = Builder().Build();
  ASSERT_TRUE(built.ok());
  Learner learner = std::move(built).value();
  Train(learner, 200, 7);
  Result<uint64_t> window = BeginDeltaWindow(learner.method(), learner.impl());
  ASSERT_TRUE(window.ok());
  std::unique_ptr<BudgetedClassifier> replica = learner.impl().Clone();
  const std::string before = Bytes(learner.method(), *replica);
  Train(learner, 100, 13);

  std::ostringstream delta(std::ios::binary);
  ASSERT_TRUE(
      SaveDelta(learner.method(), learner.impl(), window.value(), delta, nullptr).ok());
  const std::string payload = std::move(delta).str();

  // Chop the payload at several depths: every truncation must be rejected
  // as Corruption with the replica byte-identical to before.
  for (const size_t keep : {size_t{3}, payload.size() / 2, payload.size() - 1}) {
    snapshot::SnapshotReader reader{std::string_view(payload).substr(0, keep)};
    const Status st = ApplyDelta(learner.method(), *replica, reader);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "keep=" << keep;
    EXPECT_EQ(Bytes(learner.method(), *replica), before) << "keep=" << keep;
  }
}

// ------------------------------------------------- handshake & rejection

TEST_F(DistTest, HandshakeRejectsEveryIncompatibleIdentityDimension) {
  Result<Learner> ref = Builder().Build();
  ASSERT_TRUE(ref.ok());
  const std::string path = UniqueSocket("reject");
  ServingAggregator serving(AggOpts(ref.value().config()), path);
  
  struct Case {
    const char* what;
    LearnerBuilder builder;
  };
  const BudgetConfig base = ref.value().config();
  BudgetConfig wider = base;
  wider.width = base.width * 2;
  BudgetConfig bigger_heap = base;
  bigger_heap.heap_capacity = base.heap_capacity * 2;
  std::vector<Case> cases;
  cases.push_back({"different seed", Builder().SetSeed(43)});
  cases.push_back({"different width", FromConfig(wider)});
  cases.push_back({"different heap capacity", FromConfig(bigger_heap)});
  cases.push_back({"different method", Builder(Method::kWmSketch)});
  cases.push_back(
      {"different rate kind", Builder().SetLearningRate(LearningRate::InverseSqrt(0.2))});
  cases.push_back(
      {"different eta0", Builder().SetLearningRate(LearningRate::Constant(0.5))});
  cases.push_back({"different lambda", Builder().SetLambda(1e-2)});

  for (Case& c : cases) {
    Result<Learner> worker = c.builder.Build();
    ASSERT_TRUE(worker.ok()) << c.what << ": " << worker.status().ToString();
    SyncClient client(worker.value().method(), ClientOpts(7, path));
    const Status st = client.Connect(worker.value().impl());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.what << ": " << st.ToString();
    EXPECT_NE(st.message().find("remote: "), std::string::npos) << c.what;
    // An identity rejection is final: the bounded retry budget must not be
    // spent re-presenting an identity that can never match.
    EXPECT_EQ(client.stats().retries, 0u) << c.what;
  }

  serving.Stop();
  // No rejected worker may have registered or contributed state.
  EXPECT_EQ(serving.agg().worker_count(), 0u);
  EXPECT_EQ(serving.agg().replica_count(), 0u);
}

TEST_F(DistTest, CorruptFrameDropsConnectionWithoutMutation) {
  Result<Learner> ref = Builder().Build();
  ASSERT_TRUE(ref.ok());
  const std::string path = UniqueSocket("corrupt");
  ServingAggregator serving(AggOpts(ref.value().config()), path);
  
  // Hand-assemble a hello frame whose payload is bit-flipped *after* the
  // CRC was computed: the aggregator must reject it at the frame layer and
  // drop the connection before any protocol handling runs.
  dist::HelloPayload hello;
  hello.worker_id = 5;
  Result<MergeIdentity> id = MergeIdentityOf(ref.value().method(), ref.value().impl());
  ASSERT_TRUE(id.ok());
  hello.identity = id.value();
  const std::string payload = EncodeHello(hello);

  std::string frame;
  frame.push_back(static_cast<char>(dist::FrameType::kHello));
  char header[16];
  const uint32_t magic = snapshot::kEnvelopeMagic;
  const uint32_t version = snapshot::kEnvelopeVersion;
  const uint64_t length = payload.size();
  std::memcpy(header + 0, &magic, sizeof(magic));
  std::memcpy(header + 4, &version, sizeof(version));
  std::memcpy(header + 8, &length, sizeof(length));
  frame.append(header, sizeof(header));
  const uint32_t crc = crc32c::Extend(crc32c::Value(header, sizeof(header)),
                                      payload.data(), payload.size());
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame.append(payload);
  frame[frame.size() - 1] ^= 0x40;  // corrupt the payload, CRC now lies

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  // The aggregator answers a corrupt frame by closing, never by replying.
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);

  serving.Stop();
  EXPECT_EQ(serving.agg().worker_count(), 0u);
  EXPECT_EQ(serving.agg().replica_count(), 0u);
}

TEST_F(DistTest, SyncBeforeHandshakeIsRejected) {
  Result<Learner> ref = Builder().Build();
  ASSERT_TRUE(ref.ok());
  const std::string path = UniqueSocket("nohello");
  ServingAggregator serving(AggOpts(ref.value().config()), path);
  
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  dist::SyncHeader header;
  header.worker_id = 9;
  header.session_token = 1;
  header.sync_seq = 1;
  ASSERT_TRUE(
      dist::SendFrame(fd, dist::FrameType::kDelta, EncodeSync(header, "junk")).ok());
  Result<dist::Frame> reply = dist::RecvFrame(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, dist::FrameType::kError);
  const Status st = dist::DecodeErrorStatus(reply.value().payload);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  ::close(fd);

  serving.Stop();
  EXPECT_EQ(serving.agg().worker_count(), 0u);
}

// ------------------------------------------------------- merge identity

TEST_F(DistTest, TwoWorkerMergeMatchesSequentialReference) {
  Result<Learner> built1 = Builder().Build();
  Result<Learner> built2 = Builder().Build();
  ASSERT_TRUE(built1.ok() && built2.ok());
  Learner w1 = std::move(built1).value();
  Learner w2 = std::move(built2).value();
  Train(w1, 300, 17);
  Train(w2, 250, 23);

  const std::string path = UniqueSocket("merge");
  ServingAggregator serving(AggOpts(w1.config()), path);
  
  SyncClient c1(w1.method(), ClientOpts(1, path));
  SyncClient c2(w2.method(), ClientOpts(2, path));
  ASSERT_TRUE(c1.Connect(w1.impl()).ok());
  ASSERT_TRUE(c1.Sync(w1.impl()).ok());  // full snapshot
  ASSERT_TRUE(c2.Connect(w2.impl()).ok());
  ASSERT_TRUE(c2.Sync(w2.impl()).ok());

  // Second sync from worker 1 travels as a dirty-page delta.
  Train(w1, 150, 29);
  ASSERT_TRUE(c1.Sync(w1.impl()).ok());
  EXPECT_EQ(c1.stats().full_syncs, 1u);
  EXPECT_EQ(c1.stats().delta_syncs, 1u);
  EXPECT_GT(c1.stats().last_pages_total, 0u);

  Result<std::string> merged = c1.FetchMergedBytes();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Sequential reference: merge the two live models in worker-id order.
  std::unique_ptr<BudgetedClassifier> reference = w1.impl().Clone();
  ASSERT_TRUE(reference->Merge(w2.impl()).ok());
  EXPECT_EQ(merged.value(), Bytes(w1.method(), *reference))
      << "aggregator merge must be byte-identical to the sequential merge";

  serving.Stop();
  EXPECT_EQ(serving.agg().worker_count(), 2u);
  EXPECT_EQ(serving.agg().replica_count(), 2u);
}

TEST_F(DistTest, FetchMergedWithoutAnySyncIsNotFound) {
  Result<Learner> ref = Builder().Build();
  ASSERT_TRUE(ref.ok());
  const std::string path = UniqueSocket("empty");
  ServingAggregator serving(AggOpts(ref.value().config()), path);
  
  SyncClient client(ref.value().method(), ClientOpts(1, path));
  Result<std::string> merged = client.FetchMergedBytes();
  EXPECT_EQ(merged.status().code(), StatusCode::kNotFound);
  serving.Stop();
}

// ------------------------------------------------- restart & resync

TEST_F(DistTest, AggregatorRestartForcesReconnectAndFullResync) {
  Result<Learner> built = Builder().Build();
  ASSERT_TRUE(built.ok());
  Learner model = std::move(built).value();
  Train(model, 200, 31);

  const std::string path = UniqueSocket("restart");
  SyncClient client(model.method(), ClientOpts(1, path));

  {
    ServingAggregator first(AggOpts(model.config()), path);
        ASSERT_TRUE(client.Connect(model.impl()).ok());
    ASSERT_TRUE(client.Sync(model.impl()).ok());
    Train(model, 100, 37);
    ASSERT_TRUE(client.Sync(model.impl()).ok());
    EXPECT_EQ(client.stats().full_syncs, 1u);
    EXPECT_EQ(client.stats().delta_syncs, 1u);
    first.Stop();
  }  // first aggregator destroyed: its session token is gone for good

  ServingAggregator second(AggOpts(model.config()), path);
    Train(model, 100, 41);
  // The client still holds the dead connection and the old session token;
  // Sync must ride the retry loop through reconnect, re-handshake with
  // resume_ok=0, and a full resync — no delta may land on the new
  // aggregator's nonexistent baseline.
  ASSERT_TRUE(client.Sync(model.impl()).ok());
  EXPECT_EQ(client.stats().full_syncs, 2u);
  EXPECT_GE(client.stats().reconnects, 2u);

  Result<std::string> merged = client.FetchMergedBytes();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value(), Bytes(model.method(), model.impl()));
  second.Stop();
  EXPECT_EQ(second.agg().replica_count(), 1u);
}

TEST_F(DistTest, InjectedMergeApplyFailureRetriesWithFullSnapshot) {
  Result<Learner> built = Builder().Build();
  ASSERT_TRUE(built.ok());
  Learner model = std::move(built).value();
  Train(model, 200, 43);

  const std::string path = UniqueSocket("mergefail");
  ServingAggregator serving(AggOpts(model.config()), path);
  
  SyncClient client(model.method(), ClientOpts(1, path));
  ASSERT_TRUE(client.Connect(model.impl()).ok());
  ASSERT_TRUE(client.Sync(model.impl()).ok());

  Train(model, 100, 47);
  // The aggregator rejects the next apply once; the client must absorb the
  // failure inside its retry budget and land the state anyway.
  failpoint::Arm("dist:merge_apply", failpoint::Action::kError, 1);
  ASSERT_TRUE(client.Sync(model.impl()).ok());
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().full_syncs, 2u)
      << "a rejected apply voids the delta baseline; the retry must be full";

  Result<std::string> merged = client.FetchMergedBytes();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value(), Bytes(model.method(), model.impl()));
  serving.Stop();
}

// ------------------------------------------------- checkpoint baseline

TEST_F(DistTest, CheckpointedMergeRecoversAsBaselineAndReportsSkips) {
  Result<Learner> built = Builder().Build();
  ASSERT_TRUE(built.ok());
  Learner model = std::move(built).value();
  Train(model, 300, 53);

  const std::string dir = UniqueDir("ckpt");
  AggregatorOptions options = AggOpts(model.config());
  options.checkpoint_dir = dir;

  std::string merged_before;
  {
    const std::string path = UniqueSocket("ckpt1");
    ServingAggregator serving(options, path);
        SyncClient client(model.method(), ClientOpts(1, path));
    ASSERT_TRUE(client.Connect(model.impl()).ok());
    ASSERT_TRUE(client.Sync(model.impl()).ok());
    Result<std::string> merged = client.FetchMergedBytes();
    ASSERT_TRUE(merged.ok());
    merged_before = merged.value();
    serving.Stop();
    ASSERT_TRUE(serving.agg().CheckpointMerged().ok());
  }

  // Plant a corrupt checkpoint above the valid one: recovery must skip it,
  // report it, and still restore the real baseline.
  {
    std::ofstream junk(dir + "/ckpt-9.wms", std::ios::binary);
    junk << "not a checkpoint";
  }

  Result<Aggregator> recovered = Aggregator::Create(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().has_baseline());
  ASSERT_EQ(recovered.value().recovery_skipped().size(), 1u);
  EXPECT_NE(recovered.value().recovery_skipped()[0].find("ckpt-9.wms"), std::string::npos);
  // With no worker synced yet, the baseline *is* the served answer.
  Result<std::string> served = recovered.value().MergedModelBytes();
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value(), merged_before);
}

}  // namespace
}  // namespace wmsketch
