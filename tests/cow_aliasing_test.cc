// Randomized interleaving coverage for the copy-on-write paged storage:
// updates × snapshot publications × clones × merges, several seeds, three
// table-backed methods. Two invariants are asserted bit-for-bit:
//
//   1. Pinned snapshots are frozen: every ReadModel / estimator pinned at
//      some instant keeps returning the exact bits it returned at capture
//      time, no matter how much the live model (or its clones) mutate,
//      merge, or publish afterwards — page aliasing must never leak a
//      writer-side mutation into a published page.
//   2. Publication is free of side effects: a reference learner that
//      receives the identical update/merge sequence but never publishes or
//      clones stays bit-identical to the live model under test.
//
// The threaded section runs the same machinery under concurrent readers so
// TSan (CI job) checks the page-sharing path for races; ASan runs the whole
// file via the full suite.

#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/learner.h"
#include "core/awm_sketch.h"
#include "core/wm_sketch.h"
#include "datagen/classification_gen.h"
#include "engine/serving.h"
#include "linear/classifier.h"
#include "linear/feature_hashing.h"
#include "util/random.h"

namespace wmsketch {
namespace {

constexpr uint32_t kProbeFeatures = 64;
constexpr size_t kProbeExamples = 8;

struct Pinned {
  std::unique_ptr<const ReadModel> model;
  WeightEstimator estimator;
  std::vector<double> margins;    // expected bits, recorded at capture
  std::vector<float> estimates;   // expected bits, recorded at capture
};

std::vector<uint32_t> ProbeFeatures(uint64_t seed, uint32_t dimension) {
  SplitMix64 rng(seed);
  std::vector<uint32_t> out;
  out.reserve(kProbeFeatures);
  for (uint32_t i = 0; i < kProbeFeatures; ++i) {
    out.push_back(static_cast<uint32_t>(rng.Next() % dimension));
  }
  return out;
}

void ExpectBitEqualFloats(const std::vector<float>& a, const std::vector<float>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&a[i], &b[i], sizeof(float)))
        << what << " slot " << i << ": " << a[i] << " vs " << b[i];
  }
}

void ExpectBitEqualDoubles(const std::vector<double>& a, const std::vector<double>& b,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&a[i], &b[i], sizeof(double)))
        << what << " slot " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Capture a snapshot of `model` and record its probe answers.
Pinned Pin(const BudgetedClassifier& model, const std::vector<uint32_t>& features,
           const std::vector<Example>& probes) {
  Pinned p;
  p.model = model.MakeReadModel();
  p.estimator = model.EstimatorSnapshot();
  p.margins.resize(probes.size());
  for (size_t e = 0; e < probes.size(); ++e) {
    p.margins[e] = p.model->PredictMargin(probes[e].x);
  }
  p.estimates.resize(features.size());
  p.model->EstimateBatch(features, p.estimates.data());
  return p;
}

/// Assert a pinned snapshot still answers with its recorded bits.
void VerifyPinned(const Pinned& p, const std::vector<uint32_t>& features,
                  const std::vector<Example>& probes) {
  std::vector<double> margins(probes.size());
  p.model->PredictBatch(probes, margins.data());
  ExpectBitEqualDoubles(p.margins, margins, "pinned margin");
  std::vector<float> estimates(features.size());
  p.model->EstimateBatch(features, estimates.data());
  ExpectBitEqualFloats(p.estimates, estimates, "pinned estimate");
  // The single-call paths and the frozen estimator must agree with the
  // recorded bits too.
  for (size_t i = 0; i < features.size(); ++i) {
    const float single = p.model->Estimate(features[i]);
    const float est = p.estimator(features[i]);
    EXPECT_EQ(0, std::memcmp(&single, &p.estimates[i], sizeof(float)));
    EXPECT_EQ(0, std::memcmp(&est, &p.estimates[i], sizeof(float)));
  }
}

/// Assert the live model under test answers bit-identically to the
/// never-published reference.
void VerifyLiveAgainstReference(const BudgetedClassifier& live,
                                const BudgetedClassifier& ref,
                                const std::vector<uint32_t>& features,
                                const std::vector<Example>& probes) {
  std::vector<float> a(features.size()), b(features.size());
  live.EstimateBatch(features, a.data());
  ref.EstimateBatch(features, b.data());
  ExpectBitEqualFloats(a, b, "live-vs-reference estimate");
  std::vector<double> ma(probes.size()), mb(probes.size());
  live.PredictBatch(probes, ma.data());
  ref.PredictBatch(probes, mb.data());
  ExpectBitEqualDoubles(ma, mb, "live-vs-reference margin");
}

/// One factory per method so the test builds matched (live, reference,
/// clone-source) instances freely.
using Factory = std::unique_ptr<BudgetedClassifier> (*)(uint64_t seed);

std::unique_ptr<BudgetedClassifier> MakeWm(uint64_t seed) {
  LearnerOptions opts;
  opts.seed = seed;
  return std::make_unique<WmSketch>(WmSketchConfig{256, 3, 32}, opts);
}

std::unique_ptr<BudgetedClassifier> MakeAwm(uint64_t seed) {
  LearnerOptions opts;
  opts.seed = seed;
  return std::make_unique<AwmSketch>(AwmSketchConfig{256, 1, 64}, opts);
}

std::unique_ptr<BudgetedClassifier> MakeHash(uint64_t seed) {
  LearnerOptions opts;
  opts.seed = seed;
  return std::make_unique<FeatureHashingClassifier>(1024, opts);
}

void RunInterleaving(Factory make, uint64_t seed) {
  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  SyntheticClassificationGen gen(profile, seed);
  const std::vector<uint32_t> features = ProbeFeatures(seed * 31 + 7, profile.dimension);
  std::vector<Example> probes;
  for (size_t i = 0; i < kProbeExamples; ++i) probes.push_back(gen.Next());

  std::unique_ptr<BudgetedClassifier> live = make(seed);
  std::unique_ptr<BudgetedClassifier> ref = make(seed);  // never publishes

  SplitMix64 rng(seed * 1000003 + 17);
  std::vector<Pinned> pinned;
  for (int op = 0; op < 400; ++op) {
    const uint64_t dice = rng.Next() % 100;
    if (dice < 70) {
      // Update both models with the same example.
      const Example ex = gen.Next();
      live->Update(ex.x, ex.y);
      ref->Update(ex.x, ex.y);
    } else if (dice < 85) {
      // Publish: pin a snapshot of the live model (the reference does NOT
      // publish — that asymmetry is invariant 2). Cap retained snapshots to
      // bound the test's memory while still aging several generations.
      pinned.push_back(Pin(*live, features, probes));
      if (pinned.size() > 6) pinned.erase(pinned.begin());
    } else if (dice < 95 && live->Clone() != nullptr) {
      // Clone-and-diverge: train the clone (which shares pages with every
      // pinned snapshot) on examples the live model never sees, publish
      // from it, then drop it. Must not disturb the live model or any pin.
      std::unique_ptr<BudgetedClassifier> clone = live->Clone();
      SyntheticClassificationGen side(profile, rng.Next());
      for (int i = 0; i < 20; ++i) {
        const Example ex = side.Next();
        clone->Update(ex.x, ex.y);
      }
      (void)clone->MakeReadModel();  // publish from the clone, then drop it
    } else {
      // Merge: fold a freshly-trained clone into the live model, mirrored
      // exactly on the reference side (clones of bit-identical models
      // trained on the same side stream stay bit-identical).
      const uint64_t side_seed = rng.Next();
      std::unique_ptr<BudgetedClassifier> c_live = live->Clone();
      std::unique_ptr<BudgetedClassifier> c_ref = ref->Clone();
      if (c_live == nullptr || c_ref == nullptr) continue;
      SyntheticClassificationGen s1(profile, side_seed);
      SyntheticClassificationGen s2(profile, side_seed);
      for (int i = 0; i < 10; ++i) {
        const Example e1 = s1.Next();
        c_live->Update(e1.x, e1.y);
        const Example e2 = s2.Next();
        c_ref->Update(e2.x, e2.y);
      }
      ASSERT_TRUE(live->MergeScaled(*c_live, 0.5).ok());
      ASSERT_TRUE(ref->MergeScaled(*c_ref, 0.5).ok());
    }

    if (op % 25 == 0) {
      for (const Pinned& p : pinned) VerifyPinned(p, features, probes);
      VerifyLiveAgainstReference(*live, *ref, features, probes);
    }
  }
  for (const Pinned& p : pinned) VerifyPinned(p, features, probes);
  VerifyLiveAgainstReference(*live, *ref, features, probes);
}

TEST(CowAliasingTest, WmRandomizedInterleaving) {
  for (const uint64_t seed : {11u, 22u, 33u}) RunInterleaving(&MakeWm, seed);
}

TEST(CowAliasingTest, AwmRandomizedInterleaving) {
  for (const uint64_t seed : {11u, 22u, 33u}) RunInterleaving(&MakeAwm, seed);
}

TEST(CowAliasingTest, HashRandomizedInterleaving) {
  for (const uint64_t seed : {11u, 22u, 33u}) RunInterleaving(&MakeHash, seed);
}

// Hash stores no merge semantics; make sure the random loop above didn't
// silently skip everything for it by asserting the clone path exists.
TEST(CowAliasingTest, HashClonesAreIndependent) {
  std::unique_ptr<BudgetedClassifier> a = MakeHash(5);
  ASSERT_NE(a, nullptr);
}

// Concurrent readers over published paged snapshots while the writer trains
// and clones: no assertions beyond sanity — the value is TSan coverage of
// page sharing (refcount handoff, immutable page reads) under the wait-free
// serving protocol.
TEST(CowAliasingTest, ConcurrentReadersOverSharedPages) {
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(Method::kWmSketch)
                              .SetWidth(256)
                              .SetDepth(3)
                              .SetHeapCapacity(64)
                              .ServeEvery(128)
                              .Build();
  ASSERT_TRUE(built.ok());
  Learner model = std::move(built).value();

  const ClassificationProfile profile = ClassificationProfile::SmallTest();
  SyntheticClassificationGen gen(profile, 99);
  std::vector<Example> stream;
  for (int i = 0; i < 6000; ++i) stream.push_back(gen.Next());

  std::vector<ServingHandle> handles;
  for (int r = 0; r < 2; ++r) {
    Result<ServingHandle> h = model.AcquireServingHandle();
    ASSERT_TRUE(h.ok());
    handles.push_back(std::move(h).value());
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      const std::vector<uint32_t> keys = ProbeFeatures(700 + r, profile.dimension);
      std::vector<float> est(keys.size());
      std::vector<double> margins(16);
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        handles[static_cast<size_t>(r)].EstimateBatch(keys, est.data());
        handles[static_cast<size_t>(r)].PredictBatch(
            std::span<const Example>(stream.data(), 16), margins.data());
        const uint64_t v = handles[static_cast<size_t>(r)].version();
        EXPECT_GE(v, last_version);
        last_version = v;
      }
    });
  }

  for (size_t at = 0; at + 64 <= stream.size(); at += 64) {
    model.UpdateBatch(std::span<const Example>(stream.data() + at, 64));
    if (at % 1024 == 0) {
      // Clone churn on the writer thread: clones share pages with the
      // snapshots the readers are pinning right now.
      std::unique_ptr<BudgetedClassifier> clone = model.impl().Clone();
      ASSERT_NE(clone, nullptr);
      (void)clone->MakeReadModel();
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
}

}  // namespace
}  // namespace wmsketch
