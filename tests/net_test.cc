// Tests for the network serving tier (src/net/): the shared wire framing
// (incremental TryDecodeFrame), bit-identical request/response round-trips
// against direct ServingHandle calls for all seven methods, the
// corruption/disconnect containment matrix (a bad frame or a killed client
// costs exactly one connection, never the daemon), the version-keyed top-K
// response cache (hit bytes identical, one invalidation per publish), and
// the micro-batch dispatch structure (pipelined requests coalesce into one
// PredictBatch call).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "engine/serving.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/wire.h"
#include "util/failpoint.h"
#include "util/memory_cost.h"
#include "util/random.h"

namespace wmsketch {
namespace {

using net::MsgType;
using net::ServerOptions;
using net::ServerStats;
using net::ServingClient;
using net::ServingServer;

std::string UniqueSocket(const std::string& name) {
  return "/tmp/wms_net_" + name + "_" + std::to_string(::getpid());
}

LearnerBuilder Builder(Method method = Method::kAwmSketch) {
  return LearnerBuilder()
      .SetMethod(method)
      .SetBudgetBytes(KiB(2))
      .SetLambda(1e-4)
      .SetLearningRate(LearningRate::Constant(0.2))
      .SetSeed(42)
      .ServeEvery(0);  // publication is test-paced
}

std::vector<Example> MakeStream(int n, uint64_t seed) {
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), seed);
  std::vector<Example> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

std::vector<uint32_t> FeatureIds(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint32_t> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) ids.push_back(static_cast<uint32_t>(rng.Next() % 4096));
  return ids;
}

Learner TrainedLearner(Method method, int examples = 2000) {
  Result<Learner> built = Builder(method).Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  Learner learner = std::move(built).value();
  learner.UpdateBatch(MakeStream(examples, /*seed=*/7));
  learner.PublishServingSnapshot();
  return learner;
}

std::unique_ptr<ServingServer> StartServer(Learner& learner, ServerOptions options) {
  auto started = ServingServer::Start(
      std::move(options), [&learner] { return learner.AcquireServingHandle(); });
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  return std::move(started).value();
}

/// Reads until the peer closes (or errors/times out); true iff EOF came.
bool DrainUntilEof(int fd) {
  char buf[4096];
  while (true) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r == 0) return true;
    if (r < 0) return false;
  }
}

class NetTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// ------------------------------------------------------------ wire layer

TEST_F(NetTest, TryDecodeFrameIsIncremental) {
  const std::string frame = net::EncodeFrame(17, "payload-bytes");
  // Every strict prefix: "need more bytes", no consumption, no error.
  for (size_t len = 0; len < frame.size(); ++len) {
    net::TypedFrame out;
    size_t consumed = 1;
    const Status st = net::TryDecodeFrame(std::string_view(frame.data(), len), 0, 255,
                                          &out, &consumed);
    ASSERT_TRUE(st.ok()) << "prefix " << len << ": " << st.ToString();
    ASSERT_EQ(consumed, 0u) << "prefix " << len;
  }
  // The complete frame (with trailing bytes of the next one) decodes.
  const std::string two = frame + net::EncodeFrame(18, "second");
  net::TypedFrame out;
  size_t consumed = 0;
  ASSERT_TRUE(net::TryDecodeFrame(two, 0, 255, &out, &consumed).ok());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, 17);
  EXPECT_EQ(out.payload, "payload-bytes");
  net::TypedFrame second;
  ASSERT_TRUE(net::TryDecodeFrame(std::string_view(two).substr(consumed), 0, 255,
                                  &second, &consumed)
                  .ok());
  EXPECT_EQ(second.type, 18);
  EXPECT_EQ(second.payload, "second");
}

TEST_F(NetTest, TryDecodeFrameRejectsCorruption) {
  const std::string good = net::EncodeFrame(17, "payload-bytes");
  net::TypedFrame out;
  size_t consumed = 0;

  // Type byte outside the accepted window: rejected on the FIRST byte.
  std::string bad_type = good;
  bad_type[0] = static_cast<char>(200);
  EXPECT_EQ(net::TryDecodeFrame(std::string_view(bad_type.data(), 1), 0, 100, &out,
                                &consumed)
                .code(),
            StatusCode::kCorruption);

  // Bad magic: rejected as soon as the header is present, payload unseen.
  std::string bad_magic = good;
  bad_magic[1] = 'X';
  EXPECT_EQ(net::TryDecodeFrame(
                std::string_view(bad_magic.data(), net::kFrameHeaderBytes), 0, 255,
                &out, &consumed)
                .code(),
            StatusCode::kCorruption);

  // Lying length field beyond the sanity cap: rejected before buffering.
  std::string bad_length = good;
  const uint64_t huge = uint64_t{1} << 60;
  std::memcpy(bad_length.data() + 9, &huge, sizeof(huge));
  EXPECT_EQ(net::TryDecodeFrame(bad_length, 0, 255, &out, &consumed).code(),
            StatusCode::kCorruption);

  // Flipped payload bit: CRC mismatch.
  std::string bad_crc = good;
  bad_crc[bad_crc.size() - 1] ^= 0x01;
  EXPECT_EQ(net::TryDecodeFrame(bad_crc, 0, 255, &out, &consumed).code(),
            StatusCode::kCorruption);
}

// --------------------------------------- round-trip bit-identity, 7 methods

TEST_F(NetTest, ResponsesBitIdenticalToServingHandleAllMethods) {
  const std::vector<Example> queries = MakeStream(64, /*seed=*/99);
  const std::vector<uint32_t> features = FeatureIds(64, /*seed=*/100);
  for (const Method method : AllMethods()) {
    SCOPED_TRACE(MethodName(method));
    Learner learner = TrainedLearner(method);
    const std::string path = UniqueSocket("rt_" + MethodName(method));
    ServerOptions options;
    options.unix_path = path;
    options.readers = 1;
    auto server = StartServer(learner, options);

    Result<ServingHandle> direct = learner.AcquireServingHandle();
    ASSERT_TRUE(direct.ok());
    std::vector<double> want_margins(queries.size());
    direct.value().PredictBatch(queries, want_margins.data());
    std::vector<float> want_estimates(features.size());
    direct.value().EstimateBatch(features, want_estimates.data());
    const std::vector<FeatureWeight> want_topk = direct.value().TopK(16);
    const uint64_t want_version = direct.value().version();

    Result<ServingClient> connected = ServingClient::ConnectUnix(path);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    ServingClient client = std::move(connected).value();

    Result<net::PredictResponse> predict = client.Predict(queries);
    ASSERT_TRUE(predict.ok()) << predict.status().ToString();
    EXPECT_EQ(predict.value().version, want_version);
    ASSERT_EQ(predict.value().margins.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(predict.value().margins[i], want_margins[i]) << "example " << i;
    }

    Result<net::EstimateResponse> estimate = client.Estimate(features);
    ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
    ASSERT_EQ(estimate.value().estimates.size(), features.size());
    for (size_t i = 0; i < features.size(); ++i) {
      EXPECT_EQ(estimate.value().estimates[i], want_estimates[i]) << "feature " << i;
    }

    Result<net::TopKResponse> topk = client.TopK(16);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    EXPECT_EQ(topk.value().entries, want_topk);

    Result<net::ModelInfoResponse> info = client.ModelInfo();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().snapshot_version, want_version);
    EXPECT_EQ(info.value().steps, direct.value().steps());
    EXPECT_EQ(info.value().resident_bytes, direct.value().resident_bytes());
  }
}

TEST_F(NetTest, TcpRoundTrip) {
  Learner learner = TrainedLearner(Method::kWmSketch);
  ServerOptions options;
  options.tcp_port = 0;  // kernel-assigned loopback port
  options.readers = 1;
  auto server = StartServer(learner, options);
  ASSERT_GT(server->tcp_port(), 0);

  Result<ServingClient> connected = ServingClient::ConnectTcp("127.0.0.1", server->tcp_port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  ServingClient client = std::move(connected).value();

  const std::vector<Example> queries = MakeStream(8, /*seed=*/5);
  Result<ServingHandle> direct = learner.AcquireServingHandle();
  ASSERT_TRUE(direct.ok());
  Result<net::PredictResponse> predict = client.Predict(queries);
  ASSERT_TRUE(predict.ok()) << predict.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(predict.value().margins[i], direct.value().PredictMargin(queries[i].x));
  }
}

// --------------------------------------------- corruption containment

TEST_F(NetTest, CorruptFramesDropOnlyTheirConnection) {
  Learner learner = TrainedLearner(Method::kAwmSketch);
  const std::string path = UniqueSocket("corrupt");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 1;
  options.io_timeout_ms = 2000;
  auto server = StartServer(learner, options);

  const std::string good =
      net::EncodeFrame(static_cast<uint8_t>(MsgType::kTopKRequest),
                       net::EncodeTopKRequest(net::TopKRequest{4}));

  // Each corrupt frame on its own connection: the daemon must drop exactly
  // that connection (we observe EOF) and keep serving everyone else.
  std::vector<std::pair<const char*, std::string>> cases;
  {
    std::string bad_magic = good;
    bad_magic[1] = 'X';
    cases.emplace_back("bad-magic", bad_magic);
    std::string bad_version = good;
    bad_version[5] = 9;
    cases.emplace_back("bad-version", bad_version);
    std::string bad_crc = good;
    bad_crc[bad_crc.size() - 1] ^= 0x01;
    cases.emplace_back("bad-crc", bad_crc);
    std::string oversized = good;
    const uint64_t huge = uint64_t{1} << 60;
    std::memcpy(oversized.data() + 9, &huge, sizeof(huge));
    cases.emplace_back("oversized-length", oversized);
    std::string bad_type = good;
    bad_type[0] = static_cast<char>(250);
    cases.emplace_back("unknown-type", bad_type);
    // A frame cut off mid-payload, then close: torn mid-send.
    cases.emplace_back("torn-frame", good.substr(0, good.size() - 3));
  }

  for (const auto& [name, bytes] : cases) {
    SCOPED_TRACE(name);
    Result<ServingClient> victim = ServingClient::ConnectUnix(path, 2000);
    ASSERT_TRUE(victim.ok()) << victim.status().ToString();
    ASSERT_EQ(::send(victim.value().fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    if (std::string_view(name) == "torn-frame") {
      ::shutdown(victim.value().fd(), SHUT_WR);  // EOF mid-frame
    }
    EXPECT_TRUE(DrainUntilEof(victim.value().fd()));

    // The daemon is still alive and serving fresh connections.
    Result<ServingClient> healthy = ServingClient::ConnectUnix(path, 2000);
    ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
    Result<net::TopKResponse> topk = healthy.value().TopK(4);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  }

  const ServerStats stats = server->stats();
  EXPECT_GE(stats.frames_corrupt, cases.size());
  EXPECT_GE(stats.connections_dropped, cases.size());
}

TEST_F(NetTest, MalformedPayloadAnswersErrorAndKeepsConnection) {
  Learner learner = TrainedLearner(Method::kWmSketch);
  const std::string path = UniqueSocket("payload");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 1;
  auto server = StartServer(learner, options);

  Result<ServingClient> connected = ServingClient::ConnectUnix(path, 2000);
  ASSERT_TRUE(connected.ok());
  ServingClient client = std::move(connected).value();

  // CRC-valid frame, garbage payload: a truncated predict request must come
  // back as an error frame — the connection survives.
  ASSERT_TRUE(net::SendFrame(client.fd(), static_cast<uint8_t>(MsgType::kPredictRequest),
                             std::string(2, '\x7f'), "test:send")
                  .ok());
  Result<net::TypedFrame> reply =
      net::RecvFrame(client.fd(), net::kMinMsgType, net::kMaxMsgType, "test:recv");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().type, static_cast<uint8_t>(MsgType::kErrorResponse));
  EXPECT_EQ(net::DecodeErrorStatus(reply.value().payload).code(), StatusCode::kCorruption);

  // A CRC-valid predict whose vector violates the SparseVector invariants
  // (unsorted indices) is InvalidArgument, also without dropping the conn.
  net::PredictRequest bad;
  bad.examples.emplace_back();
  {
    std::ostringstream os(std::ios::binary);
    // count=1, nnz=2, indices {5, 3} (unsorted), values {1.0, 1.0}
    const uint32_t one = 1, nnz = 2, i0 = 5, i1 = 3;
    const float v = 1.0f;
    os.write(reinterpret_cast<const char*>(&one), 4);    // wms-lint: allow(checked-io): hand-assembled malformed payload under test
    os.write(reinterpret_cast<const char*>(&nnz), 4);    // wms-lint: allow(checked-io): hand-assembled malformed payload under test
    os.write(reinterpret_cast<const char*>(&i0), 4);     // wms-lint: allow(checked-io): hand-assembled malformed payload under test
    os.write(reinterpret_cast<const char*>(&i1), 4);     // wms-lint: allow(checked-io): hand-assembled malformed payload under test
    os.write(reinterpret_cast<const char*>(&v), 4);      // wms-lint: allow(checked-io): hand-assembled malformed payload under test
    os.write(reinterpret_cast<const char*>(&v), 4);      // wms-lint: allow(checked-io): hand-assembled malformed payload under test
    ASSERT_TRUE(net::SendFrame(client.fd(),
                               static_cast<uint8_t>(MsgType::kPredictRequest),
                               std::move(os).str(), "test:send")
                    .ok());
  }
  reply = net::RecvFrame(client.fd(), net::kMinMsgType, net::kMaxMsgType, "test:recv");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().type, static_cast<uint8_t>(MsgType::kErrorResponse));
  EXPECT_EQ(net::DecodeErrorStatus(reply.value().payload).code(),
            StatusCode::kInvalidArgument);

  // Same connection, valid request: still serving.
  Result<net::TopKResponse> topk = client.TopK(4);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  EXPECT_GE(server->stats().requests_rejected, 2u);
}

TEST_F(NetTest, ClientKilledMidRequestLeavesOthersServing) {
  Learner learner = TrainedLearner(Method::kAwmSketch);
  const std::string path = UniqueSocket("chaos");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 1;
  options.io_timeout_ms = 2000;
  auto server = StartServer(learner, options);

  Result<ServingClient> a = ServingClient::ConnectUnix(path, 2000);
  Result<ServingClient> b = ServingClient::ConnectUnix(path, 2000);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::vector<Example> queries = MakeStream(4, /*seed=*/3);

  // Client A dies mid-send: its request frame is torn on the wire.
  failpoint::Arm("net:client_send", failpoint::Action::kShortWrite, 1);
  Result<net::PredictResponse> torn = a.value().Predict(queries);
  EXPECT_FALSE(torn.ok());
  { ServingClient drop = std::move(a).value(); }  // close A's socket (EOF mid-frame)

  // Client B keeps being served by the same reader.
  Result<net::PredictResponse> fine = b.value().Predict(queries);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();

  // Server-side injected faults: the reader's recv path tears one
  // connection; the next connection must be unaffected.
  for (const failpoint::Action act :
       {failpoint::Action::kError, failpoint::Action::kShortWrite}) {
    Result<ServingClient> victim = ServingClient::ConnectUnix(path, 2000);
    ASSERT_TRUE(victim.ok());
    failpoint::Arm("net:recv", act, 1);
    (void)victim.value().TopK(4);  // fault fires on this request's bytes
    EXPECT_TRUE(DrainUntilEof(victim.value().fd()));
    Result<net::PredictResponse> alive = b.value().Predict(queries);
    ASSERT_TRUE(alive.ok()) << alive.status().ToString();
  }

  // Injected send fault: the response write fails, the victim is dropped,
  // the neighbor still serves.
  {
    Result<ServingClient> victim = ServingClient::ConnectUnix(path, 2000);
    ASSERT_TRUE(victim.ok());
    failpoint::Arm("net:send", failpoint::Action::kError, 1);
    Result<net::TopKResponse> lost = victim.value().TopK(4);
    EXPECT_FALSE(lost.ok());
    Result<net::PredictResponse> alive = b.value().Predict(queries);
    ASSERT_TRUE(alive.ok()) << alive.status().ToString();
  }
}

// ------------------------------------------------- version-keyed K cache

TEST_F(NetTest, TopKCacheHitsAreIdenticalAndInvalidateOncePerPublish) {
  Learner learner = TrainedLearner(Method::kAwmSketch);
  const std::string path = UniqueSocket("cache");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 1;
  auto server = StartServer(learner, options);

  Result<ServingClient> connected = ServingClient::ConnectUnix(path);
  ASSERT_TRUE(connected.ok());
  ServingClient client = std::move(connected).value();
  Result<ServingHandle> direct = learner.AcquireServingHandle();
  ASSERT_TRUE(direct.ok());

  // Miss, then hit: identical bytes (decoded: identical version + entries),
  // and identical to a fresh ServingHandle::TopK of the same snapshot.
  Result<net::TopKResponse> first = client.TopK(8);
  ASSERT_TRUE(first.ok());
  Result<net::TopKResponse> second = client.TopK(8);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().version, second.value().version);
  EXPECT_EQ(first.value().entries, second.value().entries);
  EXPECT_EQ(first.value().entries, direct.value().TopK(8));
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.topk_cache_misses, 1u);
  EXPECT_EQ(stats.topk_cache_hits, 1u);
  EXPECT_EQ(stats.topk_cache_invalidations, 0u);

  // A different k under the same version is its own cache entry.
  Result<net::TopKResponse> other_k = client.TopK(4);
  ASSERT_TRUE(other_k.ok());
  stats = server->stats();
  EXPECT_EQ(stats.topk_cache_misses, 2u);

  // Publish: the version advances, the cache invalidates exactly once, and
  // the fresh response reflects the new snapshot.
  learner.UpdateBatch(MakeStream(500, /*seed=*/11));
  learner.PublishServingSnapshot();
  Result<net::TopKResponse> after = client.TopK(8);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.value().version, first.value().version);
  EXPECT_EQ(after.value().entries, direct.value().TopK(8));
  stats = server->stats();
  EXPECT_EQ(stats.topk_cache_invalidations, 1u);
  EXPECT_EQ(stats.topk_cache_misses, 3u);

  // And hits resume on the new version — no second invalidation.
  Result<net::TopKResponse> warm = client.TopK(8);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().entries, after.value().entries);
  stats = server->stats();
  EXPECT_EQ(stats.topk_cache_hits, 2u);
  EXPECT_EQ(stats.topk_cache_invalidations, 1u);
}

// ------------------------------------------------- micro-batch dispatch

TEST_F(NetTest, PipelinedRequestsCoalesceIntoOneBatchDispatch) {
  Learner learner = TrainedLearner(Method::kWmSketch);
  const std::string path = UniqueSocket("batch");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 1;
  options.max_batch = 1024;
  auto server = StartServer(learner, options);

  Result<ServingClient> connected = ServingClient::ConnectUnix(path);
  ASSERT_TRUE(connected.ok());
  ServingClient client = std::move(connected).value();

  // 16 predict requests written in ONE send: they arrive together, so the
  // reader's drain must coalesce them into a single PredictBatch dispatch.
  const std::vector<Example> queries = MakeStream(16, /*seed=*/21);
  std::string pipelined;
  for (const Example& ex : queries) {
    net::PredictRequest req;
    req.examples.push_back(ex);
    pipelined += net::EncodeFrame(static_cast<uint8_t>(MsgType::kPredictRequest),
                                  net::EncodePredictRequest(req));
  }
  ASSERT_EQ(::send(client.fd(), pipelined.data(), pipelined.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(pipelined.size()));

  Result<ServingHandle> direct = learner.AcquireServingHandle();
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<net::TypedFrame> reply =
        net::RecvFrame(client.fd(), net::kMinMsgType, net::kMaxMsgType, "test:recv");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.value().type, static_cast<uint8_t>(MsgType::kPredictResponse));
    Result<net::PredictResponse> resp = net::DecodePredictResponse(reply.value().payload);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp.value().margins.size(), 1u);
    // Bit-identical to the direct (unbatched) serving read.
    EXPECT_EQ(resp.value().margins[0], direct.value().PredictMargin(queries[i].x));
  }

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.requests_batched, queries.size());
  // All 16 arrived in one chunk; allow a little slack for an unlucky epoll
  // wakeup splitting the burst, but the structure must be many-requests-
  // per-dispatch, not one-dispatch-each.
  EXPECT_LE(stats.batches_dispatched, 3u);
  EXPECT_GE(stats.max_coalesced, 8u);
}

TEST_F(NetTest, MixedPipelinePreservesPerConnectionOrder) {
  Learner learner = TrainedLearner(Method::kAwmSketch);
  const std::string path = UniqueSocket("mixed");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 1;
  auto server = StartServer(learner, options);

  Result<ServingClient> connected = ServingClient::ConnectUnix(path);
  ASSERT_TRUE(connected.ok());
  ServingClient client = std::move(connected).value();

  // predict, top-k, estimate, model-info pipelined in one write: responses
  // must come back in exactly that order.
  const std::vector<Example> queries = MakeStream(4, /*seed=*/31);
  const std::vector<uint32_t> features = FeatureIds(4, /*seed=*/32);
  net::PredictRequest preq;
  preq.examples = queries;
  net::EstimateRequest ereq;
  ereq.features = features;
  std::string pipelined;
  pipelined += net::EncodeFrame(static_cast<uint8_t>(MsgType::kPredictRequest),
                                net::EncodePredictRequest(preq));
  pipelined += net::EncodeFrame(static_cast<uint8_t>(MsgType::kTopKRequest),
                                net::EncodeTopKRequest(net::TopKRequest{4}));
  pipelined += net::EncodeFrame(static_cast<uint8_t>(MsgType::kEstimateRequest),
                                net::EncodeEstimateRequest(ereq));
  pipelined += net::EncodeFrame(static_cast<uint8_t>(MsgType::kModelInfoRequest), "");
  ASSERT_EQ(::send(client.fd(), pipelined.data(), pipelined.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(pipelined.size()));

  const MsgType expected[] = {MsgType::kPredictResponse, MsgType::kTopKResponse,
                              MsgType::kEstimateResponse, MsgType::kModelInfoResponse};
  for (const MsgType want : expected) {
    Result<net::TypedFrame> reply =
        net::RecvFrame(client.fd(), net::kMinMsgType, net::kMaxMsgType, "test:recv");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.value().type, static_cast<uint8_t>(want));
  }
}

// ------------------------------------------------------------- lifecycle

TEST_F(NetTest, ShutdownFrameStopsTheDaemon) {
  Learner learner = TrainedLearner(Method::kWmSketch);
  const std::string path = UniqueSocket("shutdown");
  ServerOptions options;
  options.unix_path = path;
  options.readers = 2;
  auto server = StartServer(learner, options);

  Result<ServingClient> connected = ServingClient::ConnectUnix(path);
  ASSERT_TRUE(connected.ok());
  ASSERT_TRUE(connected.value().Shutdown().ok());
  server->WaitForShutdown();  // returns because the ack already landed
  server->Stop();
  // After Stop the socket is gone: new connections must fail.
  EXPECT_FALSE(ServingClient::ConnectUnix(path).ok());
}

TEST_F(NetTest, StartValidatesOptions) {
  Learner learner = TrainedLearner(Method::kWmSketch);
  ServerOptions no_listener;
  no_listener.readers = 1;
  EXPECT_EQ(ServingServer::Start(no_listener,
                                 [&] { return learner.AcquireServingHandle(); })
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ServerOptions no_readers;
  no_readers.unix_path = UniqueSocket("invalid");
  no_readers.readers = 0;
  EXPECT_EQ(ServingServer::Start(no_readers,
                                 [&] { return learner.AcquireServingHandle(); })
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wmsketch
