// Merge aggregator daemon for distributed training: listens on a Unix-domain
// socket, verifies each worker's merge identity in the handshake, keeps one
// replica per worker current via dirty-page deltas (full-snapshot fallback),
// and serves the exact merge of all replicas to any client that asks.
//
//   $ ./dist_aggregator --socket=/tmp/wms.sock \
//         [--method=awm] [--budget-kb=8] [--seed=42] \
//         [--checkpoint-dir=DIR] [--keep-last=3]
//
// With --checkpoint-dir the newest valid checkpoint is recovered at startup
// and served as the merged baseline until workers resync; corrupt or torn
// checkpoints are skipped with a warning naming each file. Stop it with
// dist_worker --shutdown (or any client sending a shutdown frame).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/learner.h"
#include "dist/aggregator.h"
#include "util/memory_cost.h"

using namespace wmsketch;

namespace {

// Only the linear sketches have exact merge semantics, so only they can be
// aggregated (MergeIdentityOf rejects everything else at Create()).
Result<Method> ParseMergeableMethod(const std::string& name) {
  if (name == "wm") return Method::kWmSketch;
  if (name == "awm") return Method::kAwmSketch;
  return Status::InvalidArgument("method '" + name +
                                 "' has no exact merge; use wm or awm");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string method_name = "awm";
  std::string checkpoint_dir;
  size_t budget_kb = 8;
  size_t keep_last = 3;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--method=", 9) == 0) {
      method_name = arg + 9;
    } else if (std::strncmp(arg, "--budget-kb=", 12) == 0) {
      budget_kb = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      checkpoint_dir = arg + 17;
    } else if (std::strncmp(arg, "--keep-last=", 12) == 0) {
      keep_last = std::strtoull(arg + 12, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: dist_aggregator --socket=PATH [options]\n");
    return 2;
  }

  Result<Method> method = ParseMergeableMethod(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 1;
  }
  Result<BudgetConfig> config = DefaultConfig(method.value(), KiB(budget_kb));
  if (!config.ok()) {
    std::fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 1;
  }

  dist::AggregatorOptions options;
  options.config = config.value();
  options.opts.seed = seed;
  options.checkpoint_dir = checkpoint_dir;
  options.keep_last = keep_last;

  Result<dist::Aggregator> created = dist::Aggregator::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "error: %s\n", created.status().ToString().c_str());
    return 1;
  }
  dist::Aggregator agg = std::move(created).value();
  for (const std::string& s : agg.recovery_skipped()) {
    std::fprintf(stderr, "warning: recovery skipped %s\n", s.c_str());
  }
  if (agg.has_baseline()) {
    std::printf("recovered checkpoint baseline from %s\n", checkpoint_dir.c_str());
  }

  if (const Status st = agg.Bind(socket_path); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("aggregator serving %s on %s (session %016llx)\n",
              config.value().ToString().c_str(), socket_path.c_str(),
              static_cast<unsigned long long>(agg.session_token()));

  const Status st = agg.ServeUntilShutdown();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("shutdown requested: %zu worker(s), %zu replica(s)\n", agg.worker_count(),
              agg.replica_count());
  if (!checkpoint_dir.empty() && agg.replica_count() > 0) {
    if (const Status ckpt = agg.CheckpointMerged(); !ckpt.ok()) {
      std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                   ckpt.ToString().c_str());
    } else {
      std::printf("merged model checkpointed to %s\n", checkpoint_dir.c_str());
    }
  }
  return 0;
}
