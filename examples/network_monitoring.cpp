// Network monitoring / relative-deltoid detection (paper Sec. 8.2): find IP
// addresses whose traffic ratio between two concurrently-monitored links is
// extreme, using a 32 KB sketched classifier, and compare against the paired
// Count-Min estimator of Cormode & Muthukrishnan at the same budget.
//
//   $ ./network_monitoring
//
// Stream-1 packets are positive examples, stream-2 packets negative; the
// logistic weight of an address converges to its log occurrence ratio, so
// the classifier's top-K *is* the deltoid report.

#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "apps/deltoid.h"
#include "datagen/packet_gen.h"
#include "metrics/recall.h"

using namespace wmsketch;

int main() {
  const uint32_t kUniverse = 1u << 17;  // 131K addresses
  PacketTraceGenerator trace(kUniverse, /*num_deltoids=*/256, /*seed=*/99);

  Result<Learner> built = LearnerBuilder()
                              .SetMethod(Method::kAwmSketch)
                              .SetBudgetBytes(KiB(32))
                              .SetLambda(1e-6)
                              .SetLearningRate(LearningRate::InverseSqrt(0.1))
                              .SetSeed(3)
                              .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner awm = std::move(built).value();
  RelativeDeltoidDetector detector(&awm);
  PairedCmRatioEstimator cm(2048, 2, /*seed=*/4);  // equal 32 KB total

  std::vector<uint64_t> out_counts(kUniverse, 0), in_counts(kUniverse, 0);
  const int kPackets = 2000000;
  for (int i = 0; i < kPackets; ++i) {
    const PacketEvent e = trace.Next();
    detector.Observe(e.ip, e.outbound);
    cm.Observe(e.ip, e.outbound);
    ++(e.outbound ? out_counts : in_counts)[e.ip];
  }

  std::printf("packets observed : %d over %u addresses\n", kPackets, kUniverse);
  std::printf("detector memory  : %zu bytes (paired CM: %zu)\n\n",
              awm.MemoryCostBytes(), cm.MemoryCostBytes());

  std::printf("Top reported deltoids (positive = outbound-heavy):\n");
  std::printf("%-12s %12s %12s %10s\n", "address", "est-logratio", "true-count-lr", "planted");
  int shown = 0;
  for (const FeatureWeight& fw : detector.TopDeltoids(512)) {
    if (shown >= 10) break;
    ++shown;
    const double exact = std::log((out_counts[fw.feature] + 0.5) /
                                  (in_counts[fw.feature] + 0.5));
    std::printf("%-12u %12.3f %12.3f %10s\n", fw.feature, fw.weight, exact,
                trace.planted_log_ratios().count(fw.feature) ? "yes" : "no");
  }

  // Recall of strong deltoids (|log ratio| >= 5) for both methods.
  std::vector<std::pair<uint32_t, double>> truth;
  for (uint32_t ip = 0; ip < kUniverse; ++ip) {
    if (out_counts[ip] + in_counts[ip] < 16) continue;
    truth.emplace_back(ip, std::log((out_counts[ip] + 0.5) / (in_counts[ip] + 0.5)));
  }
  const auto to_set = [](const std::vector<FeatureWeight>& fws) {
    std::unordered_set<uint32_t> s;
    for (const FeatureWeight& fw : fws) s.insert(fw.feature);
    return s;
  };
  const auto awm_recall =
      RecallAboveThresholds(to_set(detector.TopDeltoids(2048)), truth, {5.0});
  const auto cm_recall =
      RecallAboveThresholds(to_set(cm.TopDeltoids(2048, kUniverse)), truth, {5.0});
  std::printf("\nrecall of |log ratio| >= 5 deltoids: classifier %.3f, paired-CM %.3f"
              " (%zu relevant)\n",
              awm_recall[0].recall, cm_recall[0].recall, awm_recall[0].relevant);
  return 0;
}
