// Streaming pointwise mutual information (paper Sec. 8.3): find the most
// strongly-associated token pairs in a text stream — collocations like
// "prime minister" — in sublinear memory, by training a sketched logistic
// model to discriminate true in-window bigrams from synthetic
// product-of-unigram bigrams. The model weight of a pair converges to its
// PMI.
//
//   $ ./streaming_pmi
//
// The corpus generator plants known collocations, so the output can show
// estimated PMI next to the exact PMI computed from a counting replay.

#include <cstdio>
#include <unordered_map>

#include "apps/pmi.h"
#include "datagen/corpus_gen.h"
#include "metrics/pmi.h"
#include "stream/window.h"

using namespace wmsketch;

int main() {
  const uint32_t kVocab = 16384;
  const uint64_t kSeed = 404;
  CorpusGenerator corpus(kVocab, /*num_collocations=*/32, kSeed);

  PmiOptions options;                            // paper defaults: window 6,
  options.sketch = AwmSketchConfig{1u << 16, 1, 1024};  // heap 1024, depth 1
  options.learner.lambda = 1e-7;
  options.learner.seed = 5;
  StreamingPmiEstimator estimator(options);

  const int kTokens = 800000;
  for (int i = 0; i < kTokens; ++i) {
    bool boundary = false;
    const uint32_t token = corpus.Next(&boundary);
    estimator.ObserveToken(token, boundary);
  }

  // Exact counts for the retrieved pairs via a deterministic replay.
  const std::vector<PmiPair> top = estimator.TopPairs(12);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (const PmiPair& p : top) counts[(static_cast<uint64_t>(p.u) << 32) | p.v] = 0;
  std::vector<uint64_t> unigrams(kVocab, 0);
  uint64_t total_pairs = 0, total_tokens = 0;
  {
    CorpusGenerator replay(kVocab, 32, kSeed);
    SlidingWindowPairs window(options.window);
    for (int i = 0; i < kTokens; ++i) {
      bool boundary = false;
      const uint32_t token = replay.Next(&boundary);
      if (boundary) window.Reset();
      ++total_tokens;
      ++unigrams[token];
      window.Push(token, [&](uint32_t u, uint32_t v) {
        ++total_pairs;
        auto it = counts.find((static_cast<uint64_t>(u) << 32) | v);
        if (it != counts.end()) ++it->second;
      });
    }
  }

  std::printf("tokens observed : %d (%llu true bigram examples)\n", kTokens,
              static_cast<unsigned long long>(estimator.positives_seen()));
  std::printf("total memory    : %zu bytes (vs %.0f MB for exact bigram counts)\n\n",
              estimator.MemoryCostBytes(),
              static_cast<double>(total_pairs) * 4 / 1e6);

  std::printf("%-16s %10s %10s %10s\n", "pair", "est-PMI", "exact-PMI", "count");
  for (const PmiPair& p : top) {
    const uint64_t c = counts[(static_cast<uint64_t>(p.u) << 32) | p.v];
    if (c == 0) continue;
    std::printf("(%6u,%6u) %10.3f %10.3f %10llu\n", p.u, p.v, p.estimated_pmi,
                PmiFromCounts(c, total_pairs, unigrams[p.u], unigrams[p.v], total_tokens),
                static_cast<unsigned long long>(c));
  }
  return 0;
}
