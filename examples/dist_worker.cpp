// Distributed training worker: trains a sketch on a synthetic stream shard
// and ships its state to a running dist_aggregator — a full snapshot first,
// dirty-page deltas afterwards — surviving aggregator restarts and transient
// I/O failures through the client's bounded retry/backoff budget.
//
//   $ ./dist_aggregator --socket=/tmp/wms.sock &
//   $ ./dist_worker --socket=/tmp/wms.sock --worker-id=1 --shard-seed=7
//   $ ./dist_worker --socket=/tmp/wms.sock --worker-id=2 --shard-seed=13
//   $ ./dist_worker --socket=/tmp/wms.sock --fetch      # print merged stats
//   $ ./dist_worker --socket=/tmp/wms.sock --shutdown
//
// The worker's shape options must match the aggregator's exactly — method,
// budget, seed, rate, lambda — or the handshake rejects it before any state
// is shipped. Chaos-test the pair with WMS_FAILPOINTS, e.g.
// WMS_FAILPOINTS="dist:send=short:1" makes this worker tear its first frame.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "dist/worker.h"
#include "util/memory_cost.h"

using namespace wmsketch;

int main(int argc, char** argv) {
  std::string socket_path;
  std::string method_name = "awm";
  size_t budget_kb = 8;
  uint64_t seed = 42;
  uint64_t worker_id = 1;
  uint64_t shard_seed = 7;
  int rounds = 4;
  int examples_per_round = 5000;
  bool fetch_only = false;
  bool shutdown_only = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--method=", 9) == 0) {
      method_name = arg + 9;
    } else if (std::strncmp(arg, "--budget-kb=", 12) == 0) {
      budget_kb = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--worker-id=", 12) == 0) {
      worker_id = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--shard-seed=", 13) == 0) {
      shard_seed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      rounds = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--examples=", 11) == 0) {
      examples_per_round = std::atoi(arg + 11);
    } else if (std::strcmp(arg, "--fetch") == 0) {
      fetch_only = true;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      shutdown_only = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: dist_worker --socket=PATH [options]\n");
    return 2;
  }

  const Method method = method_name == "wm" ? Method::kWmSketch : Method::kAwmSketch;
  dist::SyncClientOptions copts;
  copts.worker_id = worker_id;
  copts.socket_path = socket_path;
  dist::SyncClient client(method, copts);

  if (shutdown_only) {
    const Status st = client.SendShutdown();
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("aggregator asked to shut down\n");
    return 0;
  }
  if (fetch_only) {
    Result<std::string> merged = client.FetchMergedBytes();
    if (!merged.ok()) {
      std::fprintf(stderr, "error: %s\n", merged.status().ToString().c_str());
      return 1;
    }
    std::istringstream in(merged.value(), std::ios::binary);
    LearnerOptions opts;
    opts.seed = seed;
    Result<Learner> loaded = LoadLearner(in, opts);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("merged model: %s, %llu steps, %zu bytes on the wire\n",
                loaded.value().config().ToString().c_str(),
                static_cast<unsigned long long>(loaded.value().steps()), merged.value().size());
    return 0;
  }

  Result<Learner> built = LearnerBuilder()
                              .SetMethod(method)
                              .SetBudgetBytes(KiB(budget_kb))
                              .SetSeed(seed)
                              .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner learner = std::move(built).value();

  if (const Status st = client.Connect(learner.impl()); !st.ok()) {
    std::fprintf(stderr, "error: handshake failed: %s\n", st.ToString().c_str());
    return 1;
  }

  SyntheticClassificationGen gen(ClassificationProfile::Rcv1Like(), shard_seed);
  for (int round = 1; round <= rounds; ++round) {
    std::vector<Example> stream;
    stream.reserve(static_cast<size_t>(examples_per_round));
    for (int i = 0; i < examples_per_round; ++i) stream.push_back(gen.Next());
    learner.UpdateBatch(stream);
    if (const Status st = client.Sync(learner.impl()); !st.ok()) {
      std::fprintf(stderr, "error: sync %d failed: %s\n", round, st.ToString().c_str());
      return 1;
    }
    const dist::SyncStats& s = client.stats();
    std::printf("round %d: synced step %llu (%llu full, %llu delta; last delta %llu/%llu "
                "pages; %llu bytes shipped; %llu retries, %llu reconnects)\n",
                round, static_cast<unsigned long long>(learner.steps()),
                static_cast<unsigned long long>(s.full_syncs),
                static_cast<unsigned long long>(s.delta_syncs),
                static_cast<unsigned long long>(s.last_pages_shipped),
                static_cast<unsigned long long>(s.last_pages_total),
                static_cast<unsigned long long>(s.bytes_shipped),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.reconnects));
  }
  return 0;
}
