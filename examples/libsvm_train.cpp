// Train any budgeted method on a LIBSVM-format file — the bridge from the
// synthetic reproduction to real data.
//
//   $ ./libsvm_train [path.libsvm] [method] [budget-kb] [flags]
//
// With no arguments, writes and trains on a small self-generated demo file.
// `method` is one of: trun ptrun ss cmff hash wm awm (default awm).
// Prints the online error rate and the top-10 recovered features.
//
// Durability flags:
//   --checkpoint-dir=DIR    cut crash-safe checkpoints into DIR
//   --checkpoint-every=N    checkpoint every N examples (default 0: only at end)
//   --keep-last=K           retain the K newest checkpoints (default 3)
//   --resume                restore the newest valid checkpoint from DIR and
//                           continue training from its step count

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "engine/checkpoint.h"
#include "metrics/online_error.h"
#include "stream/libsvm_io.h"
#include "util/memory_cost.h"

using namespace wmsketch;

namespace {

Method ParseMethod(const char* name) {
  for (const Method m : AllMethods()) {
    if (MethodName(m) == name) return m;
  }
  std::fprintf(stderr, "unknown method '%s', using awm\n", name);
  return Method::kAwmSketch;
}

// Writes a small synthetic LIBSVM demo file so the example is runnable
// standalone.
std::string WriteDemoFile() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wmsketch_demo.libsvm").string();
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 11);
  std::vector<Example> examples;
  examples.reserve(20000);
  for (int i = 0; i < 20000; ++i) examples.push_back(gen.Next());
  const Status st = WriteLibsvmFile(path, examples);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write demo file: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::printf("(no input given: wrote demo stream to %s)\n", path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  CheckpointSpec ckpt;
  bool resume = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      ckpt.dir = arg + 17;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      ckpt.every = static_cast<uint64_t>(std::atoll(arg + 19));
    } else if (std::strncmp(arg, "--keep-last=", 12) == 0) {
      ckpt.keep_last = static_cast<size_t>(std::atoll(arg + 12));
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else {
      positional.push_back(arg);
    }
  }
  const std::string path = !positional.empty() ? positional[0] : WriteDemoFile();
  const Method method =
      positional.size() > 1 ? ParseMethod(positional[1]) : Method::kAwmSketch;
  const size_t budget =
      KiB(positional.size() > 2 ? static_cast<size_t>(std::atoi(positional[2])) : 8);
  if (resume && ckpt.dir.empty()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint-dir=DIR\n");
    return 1;
  }

  Result<std::vector<Example>> data = ReadLibsvmFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  LearnerOptions opts;
  opts.lambda = 1e-6;
  opts.rate = LearningRate::InverseSqrt(0.1);

  Result<Learner> built = Status::NotFound("unbuilt");
  uint64_t resumed_steps = 0;
  if (resume) {
    // Restore the newest valid checkpoint; corrupt or torn files are skipped.
    std::vector<std::string> skipped;
    built = Checkpointer::RecoverFrom(ckpt.dir, opts, &skipped);
    if (!skipped.empty()) {
      // Loud, file-by-file: a skipped checkpoint means lost progress the
      // operator may want to investigate (torn write? disk corruption?)
      // before the next run quietly rotates the evidence away.
      std::fprintf(stderr,
                   "warning: recovery skipped %zu corrupt or torn checkpoint%s in %s:\n",
                   skipped.size(), skipped.size() == 1 ? "" : "s", ckpt.dir.c_str());
      for (const std::string& s : skipped) {
        std::fprintf(stderr, "warning:   %s\n", s.c_str());
      }
    }
    if (built.ok()) {
      resumed_steps = built.value().steps();
      std::printf("(resumed from %s at step %llu)\n", ckpt.dir.c_str(),
                  static_cast<unsigned long long>(resumed_steps));
      if (!ckpt.dir.empty()) {
        const Status st = built.value().EnableCheckpointing(ckpt);
        if (!st.ok()) {
          std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    } else {
      std::fprintf(stderr, "(no usable checkpoint: %s — training from scratch)\n",
                   built.status().ToString().c_str());
    }
  }
  if (!built.ok()) {
    LearnerBuilder builder;
    builder.SetMethod(method)
        .SetBudgetBytes(budget)
        .SetLambda(1e-6)
        .SetLearningRate(LearningRate::InverseSqrt(0.1));
    if (!ckpt.dir.empty()) {
      builder.CheckpointTo(ckpt.dir, ckpt.keep_last).CheckpointEvery(ckpt.every);
    }
    built = builder.Build();
  }
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner model = std::move(built).value();

  // Whole-file batch ingest with progressive validation from the returned
  // pre-update margins. On resume, skip the prefix the checkpoint already
  // trained on so the restored run continues where the crashed one stopped.
  std::vector<Example>& stream = data.value();
  const size_t skip = static_cast<size_t>(
      resumed_steps < stream.size() ? resumed_steps : stream.size());
  OnlineErrorRate err;
  std::vector<double> margins;
  model.UpdateBatch(std::span<const Example>(stream).subspan(skip), &margins);
  for (size_t i = 0; i < margins.size(); ++i) {
    err.Record(margins[i], stream[skip + i].y);
  }
  if (!ckpt.dir.empty()) {
    const Status st = model.CheckpointNow();  // final durable snapshot
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint error: %s\n", st.ToString().c_str());
    }
  }

  const LearnerSnapshot snapshot = model.Snapshot(10);
  std::printf("file        : %s (%zu examples)\n", path.c_str(), data.value().size());
  std::printf("model       : %s  (%zu bytes)\n", model.config().ToString().c_str(),
              snapshot.memory_cost_bytes());
  std::printf("error rate  : %.4f\n\n", err.Rate());
  std::printf("top-10 features by |weight|:\n");
  for (const FeatureWeight& fw : snapshot.top_k()) {
    std::printf("  %8u  %+.4f\n", fw.feature, fw.weight);
  }
  return 0;
}
