// Train any budgeted method on a LIBSVM-format file — the bridge from the
// synthetic reproduction to real data.
//
//   $ ./libsvm_train [path.libsvm] [method] [budget-kb]
//
// With no arguments, writes and trains on a small self-generated demo file.
// `method` is one of: trun ptrun ss cmff hash wm awm (default awm).
// Prints the online error rate and the top-10 recovered features.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "metrics/online_error.h"
#include "stream/libsvm_io.h"
#include "util/memory_cost.h"

using namespace wmsketch;

namespace {

Method ParseMethod(const char* name) {
  for (const Method m : AllMethods()) {
    if (MethodName(m) == name) return m;
  }
  std::fprintf(stderr, "unknown method '%s', using awm\n", name);
  return Method::kAwmSketch;
}

// Writes a small synthetic LIBSVM demo file so the example is runnable
// standalone.
std::string WriteDemoFile() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wmsketch_demo.libsvm").string();
  SyntheticClassificationGen gen(ClassificationProfile::SmallTest(), 11);
  std::vector<Example> examples;
  examples.reserve(20000);
  for (int i = 0; i < 20000; ++i) examples.push_back(gen.Next());
  const Status st = WriteLibsvmFile(path, examples);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write demo file: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::printf("(no input given: wrote demo stream to %s)\n", path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : WriteDemoFile();
  const Method method = argc > 2 ? ParseMethod(argv[2]) : Method::kAwmSketch;
  const size_t budget = KiB(argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 8);

  Result<std::vector<Example>> data = ReadLibsvmFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }

  Result<Learner> built = LearnerBuilder()
                              .SetMethod(method)
                              .SetBudgetBytes(budget)
                              .SetLambda(1e-6)
                              .SetLearningRate(LearningRate::InverseSqrt(0.1))
                              .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner model = std::move(built).value();

  // Whole-file batch ingest with progressive validation from the returned
  // pre-update margins.
  OnlineErrorRate err;
  std::vector<double> margins;
  model.UpdateBatch(data.value(), &margins);
  for (size_t i = 0; i < margins.size(); ++i) {
    err.Record(margins[i], data.value()[i].y);
  }

  const LearnerSnapshot snapshot = model.Snapshot(10);
  std::printf("file        : %s (%zu examples)\n", path.c_str(), data.value().size());
  std::printf("model       : %s  (%zu bytes)\n", model.config().ToString().c_str(),
              snapshot.memory_cost_bytes());
  std::printf("error rate  : %.4f\n\n", err.Rate());
  std::printf("top-10 features by |weight|:\n");
  for (const FeatureWeight& fw : snapshot.top_k()) {
    std::printf("  %8u  %+.4f\n", fw.feature, fw.weight);
  }
  return 0;
}
