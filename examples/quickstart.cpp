// Quickstart: train an Active-Set Weight-Median Sketch on a synthetic
// high-dimensional stream under an 8 KB memory budget, classify online, and
// recover the most heavily-weighted features — the Fig. 1 workflow of the
// paper end to end, through the public Learner facade.
//
//   $ ./quickstart
//
// This file is the README's quickstart, verbatim. What to look for in the
// output: the sketch's online error rate tracks the memory-unconstrained
// model's while using ~3 orders of magnitude less memory, and the recovered
// top-10 features match the reference model's.

#include <cstdio>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "linear/dense_linear_model.h"
#include "metrics/online_error.h"
#include "metrics/recovery.h"
#include "util/memory_cost.h"

using namespace wmsketch;

int main() {
  // A stream with RCV1-like statistics: 47,236 features, ~75 nonzeros per
  // example, Zipfian feature frequencies, noisy labels from a sparse
  // ground-truth model.
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  SyntheticClassificationGen stream(profile, /*seed=*/7);

  // An AWM-Sketch sized for an 8 KB budget (the planner picks 512 exact
  // active-set slots plus a depth-1 sketch of 1024 buckets — the paper's
  // best 8 KB configuration), with the paper's learner settings. Invalid
  // shapes come back as typed errors, not aborts.
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(Method::kAwmSketch)
                              .SetBudgetBytes(KiB(8))
                              .SetLambda(1e-6)                               // l2 regularization
                              .SetLearningRate(LearningRate::InverseSqrt(0.1))  // 0.1/sqrt(t)
                              .SetSeed(42)
                              .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner sketch = std::move(built).value();

  // The memory-unconstrained reference: a dense weight per feature (~190 KB).
  LearnerOptions reference_opts;
  reference_opts.lambda = 1e-6;
  reference_opts.seed = 42;
  DenseLinearModel reference(profile.dimension, reference_opts);

  // Stream in batches: UpdateBatch amortizes dispatch across the batch and
  // reports the pre-update margins, so progressive validation is free.
  OnlineErrorRate sketch_err, reference_err;
  const int kExamples = 100000, kBatch = 1000;
  std::vector<Example> batch(kBatch);
  std::vector<double> margins;
  for (int done = 0; done < kExamples; done += kBatch) {
    for (Example& ex : batch) ex = stream.Next();
    margins.clear();
    sketch.UpdateBatch(batch, &margins);
    for (int i = 0; i < kBatch; ++i) {
      sketch_err.Record(margins[i], batch[i].y);
      reference_err.Record(reference.Update(batch[i].x, batch[i].y), batch[i].y);
    }
  }

  std::printf("examples            : %d\n", kExamples);
  std::printf("sketch memory       : %zu bytes\n", sketch.MemoryCostBytes());
  std::printf("reference memory    : %zu bytes\n", reference.MemoryCostBytes());
  std::printf("sketch error rate   : %.4f\n", sketch_err.Rate());
  std::printf("reference error rate: %.4f\n", reference_err.Rate());

  // Query through an immutable snapshot: the top-10 materialized at capture
  // time plus a frozen per-feature estimator, detached from the live model.
  const LearnerSnapshot snapshot = sketch.Snapshot(/*top_k=*/10);
  const std::vector<float> w_star = reference.Weights();
  std::printf("\n%-10s %12s %12s\n", "feature", "sketch-w", "reference-w");
  for (const FeatureWeight& fw : snapshot.top_k()) {
    std::printf("%-10u %12.4f %12.4f\n", fw.feature, fw.weight, w_star[fw.feature]);
  }
  std::printf("\nRelErr of top-10 vs uncompressed model: %.4f (1.0 = perfect)\n",
              RelErrTopK(snapshot.top_k(), w_star, 10));
  return 0;
}
