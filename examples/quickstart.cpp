// Quickstart: train an Active-Set Weight-Median Sketch on a synthetic
// high-dimensional stream under an 8 KB memory budget, classify online, and
// recover the most heavily-weighted features — the Fig. 1 workflow of the
// paper end to end.
//
//   $ ./quickstart
//
// What to look for in the output: the sketch's online error rate tracks the
// memory-unconstrained model's while using ~3 orders of magnitude less
// memory, and the recovered top-10 features match the reference model's.

#include <cstdio>

#include "core/awm_sketch.h"
#include "core/budget.h"
#include "datagen/classification_gen.h"
#include "linear/dense_linear_model.h"
#include "metrics/online_error.h"
#include "metrics/recovery.h"
#include "util/memory_cost.h"

using namespace wmsketch;

int main() {
  // A stream with RCV1-like statistics: 47,236 features, ~75 nonzeros per
  // example, Zipfian feature frequencies, noisy labels from a sparse
  // ground-truth model.
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  SyntheticClassificationGen stream(profile, /*seed=*/7);

  // The learner settings used throughout the paper's evaluation.
  LearnerOptions opts;
  opts.lambda = 1e-6;                        // l2 regularization
  opts.rate = LearningRate::InverseSqrt(0.1);  // eta_t = 0.1 / sqrt(t)
  opts.seed = 42;

  // An AWM-Sketch sized for an 8 KB budget: 512 exact active-set slots plus
  // a depth-1 sketch of 1024 buckets (the paper's best 8 KB configuration).
  auto sketch = MakeClassifier(DefaultConfig(Method::kAwmSketch, KiB(8)), opts);

  // The memory-unconstrained reference: a dense weight per feature (~190 KB).
  DenseLinearModel reference(profile.dimension, opts);

  OnlineErrorRate sketch_err, reference_err;
  const int kExamples = 100000;
  for (int i = 0; i < kExamples; ++i) {
    const Example ex = stream.Next();
    // Update() returns the pre-update margin: progressive validation.
    sketch_err.Record(sketch->Update(ex.x, ex.y), ex.y);
    reference_err.Record(reference.Update(ex.x, ex.y), ex.y);
  }

  std::printf("examples            : %d\n", kExamples);
  std::printf("sketch memory       : %zu bytes\n", sketch->MemoryCostBytes());
  std::printf("reference memory    : %zu bytes\n", reference.MemoryCostBytes());
  std::printf("sketch error rate   : %.4f\n", sketch_err.Rate());
  std::printf("reference error rate: %.4f\n", reference_err.Rate());

  // Top-10 feature recovery: the sketch's answers vs the reference model's.
  const std::vector<float> w_star = reference.Weights();
  std::printf("\n%-10s %12s %12s\n", "feature", "sketch-w", "reference-w");
  for (const FeatureWeight& fw : sketch->TopK(10)) {
    std::printf("%-10u %12.4f %12.4f\n", fw.feature, fw.weight, w_star[fw.feature]);
  }
  std::printf("\nRelErr of top-10 vs uncompressed model: %.4f (1.0 = perfect)\n",
              RelErrTopK(sketch->TopK(10), w_star, 10));
  return 0;
}
