// Serving daemon: answers predict / estimate / top-K / model-info requests
// over the binary RPC protocol (src/net/protocol.h) on a Unix-domain socket
// and/or a loopback TCP port, through the epoll front-end (src/net/server.h)
// that micro-batches concurrent requests into the SIMD PredictBatch/
// EstimateBatch kernels and serves top-K from version-keyed caches.
//
//   $ ./wms_serve --socket=/tmp/wms_serve.sock
//         [--tcp-port=0] [--readers=2] [--max-batch=256]
//         [--method=awm] [--budget-kb=8] [--seed=42]
//         [--train=100000] [--serve-every=10000] [--train-forever]
//
// The model is trained on the synthetic RCV1-like stream before serving
// starts; with --train-forever the training thread keeps ingesting (and
// publishing every --serve-every updates) while requests are served — the
// wait-free snapshot protocol in action. Stop the daemon with a shutdown
// frame (net::ServingClient::Shutdown()).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/learner.h"
#include "datagen/classification_gen.h"
#include "net/client.h"
#include "net/server.h"
#include "util/memory_cost.h"

using namespace wmsketch;

namespace {

Result<Method> ParseMethod(const std::string& name) {
  for (const Method method : AllMethods()) {
    if (MethodName(method) == name) return method;
  }
  return Status::InvalidArgument("unknown method '" + name +
                                 "' (trun|ptrun|ss|cmff|hash|wm|awm)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string method_name = "awm";
  int tcp_port = -1;
  int readers = 2;
  size_t max_batch = 256;
  size_t budget_kb = 8;
  uint64_t seed = 42;
  uint64_t train = 100000;
  uint64_t serve_every = 10000;
  bool train_forever = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--socket=", 9) == 0) {
      socket_path = arg + 9;
    } else if (std::strncmp(arg, "--tcp-port=", 11) == 0) {
      tcp_port = static_cast<int>(std::strtol(arg + 11, nullptr, 10));
    } else if (std::strncmp(arg, "--readers=", 10) == 0) {
      readers = static_cast<int>(std::strtol(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--max-batch=", 12) == 0) {
      max_batch = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--method=", 9) == 0) {
      method_name = arg + 9;
    } else if (std::strncmp(arg, "--budget-kb=", 12) == 0) {
      budget_kb = std::strtoull(arg + 12, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--train=", 8) == 0) {
      train = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--serve-every=", 14) == 0) {
      serve_every = std::strtoull(arg + 14, nullptr, 10);
    } else if (std::strcmp(arg, "--train-forever") == 0) {
      train_forever = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }
  if (socket_path.empty() && tcp_port < 0) {
    std::fprintf(stderr,
                 "usage: wms_serve --socket=PATH and/or --tcp-port=N [options]\n");
    return 2;
  }

  Result<Method> method = ParseMethod(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 1;
  }
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(method.value())
                              .SetBudgetBytes(KiB(budget_kb))
                              .SetSeed(seed)
                              .ServeEvery(serve_every)
                              .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner learner = std::move(built).value();

  // Warm the model before serving starts so first responses are meaningful.
  SyntheticClassificationGen stream(ClassificationProfile::Rcv1Like(), seed);
  std::vector<Example> batch(1000);
  for (uint64_t done = 0; done < train; done += batch.size()) {
    for (Example& ex : batch) ex = stream.Next();
    learner.UpdateBatch(batch);
  }
  learner.PublishServingSnapshot();

  net::ServerOptions options;
  options.unix_path = socket_path;
  options.tcp_port = tcp_port;
  options.readers = readers;
  options.max_batch = max_batch;
  Result<std::unique_ptr<net::ServingServer>> started =
      net::ServingServer::Start(options, [&] { return learner.AcquireServingHandle(); });
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::ServingServer> server = std::move(started).value();

  std::printf("wms_serve: %s budget=%zuKB readers=%d max_batch=%zu", method_name.c_str(),
              budget_kb, readers, max_batch);
  if (!socket_path.empty()) std::printf(" unix=%s", socket_path.c_str());
  if (tcp_port >= 0) std::printf(" tcp=127.0.0.1:%d", server->tcp_port());
  std::printf(" trained=%llu steps\n", static_cast<unsigned long long>(learner.steps()));
  std::fflush(stdout);

  // With --train-forever the writer keeps ingesting while readers serve;
  // publication happens inside UpdateBatch at every serve_every boundary.
  std::atomic<bool> stop_training{false};
  std::thread trainer;
  if (train_forever) {
    trainer = std::thread([&] {
      std::vector<Example> chunk(1000);
      while (!stop_training.load(std::memory_order_acquire)) {
        for (Example& ex : chunk) ex = stream.Next();
        learner.UpdateBatch(chunk);
      }
    });
  }

  server->WaitForShutdown();
  stop_training.store(true, std::memory_order_release);
  if (trainer.joinable()) trainer.join();
  server->Stop();

  const net::ServerStats stats = server->stats();
  std::printf(
      "shutdown: %llu conns, %llu batched requests in %llu dispatches "
      "(max coalesced %llu), top-K cache %llu hits / %llu misses\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.requests_batched),
      static_cast<unsigned long long>(stats.batches_dispatched),
      static_cast<unsigned long long>(stats.max_coalesced),
      static_cast<unsigned long long>(stats.topk_cache_hits),
      static_cast<unsigned long long>(stats.topk_cache_misses));
  return 0;
}
