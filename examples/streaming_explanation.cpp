// Streaming data explanation (paper Sec. 8.1): identify which categorical
// attribute values are most indicative of a disbursement row being an
// outlier (top-20% by amount), with a 32 KB classifier instead of exact
// per-attribute counts.
//
//   $ ./streaming_explanation
//
// Each row's attributes are fed as 1-sparse examples labeled by the outlier
// flag; the AWM-Sketch's heaviest positive weights are the explanation. The
// output compares them against the exact relative risk (which a production
// system could not afford to track for every attribute combination).

#include <cstdio>

#include "apps/explanation.h"
#include "datagen/fec_gen.h"
#include "metrics/relative_risk.h"

using namespace wmsketch;

int main() {
  FecLikeGenerator rows(/*seed=*/2026);

  // 32 KB: 2048 exact slots + 4096-bucket depth-1 sketch.
  Result<Learner> built = LearnerBuilder()
                              .SetMethod(Method::kAwmSketch)
                              .SetWidth(4096)
                              .SetDepth(1)
                              .SetHeapCapacity(2048)
                              .SetLambda(1e-5)  // decays rarely-occurring noise
                              .SetLearningRate(LearningRate::Constant(0.1))  // stationary
                              .SetSeed(1)
                              .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Learner model = std::move(built).value();
  StreamingExplainer explainer(&model, /*outlier_repeats=*/4);  // balance classes

  RelativeRiskTracker exact;  // evaluation oracle only

  const int kRows = 200000;
  for (int i = 0; i < kRows; ++i) {
    const FecRow row = rows.Next();
    explainer.Observe(row.attributes, row.outlier);
    for (const uint32_t f : row.attributes) exact.Observe(f, row.outlier);
  }

  std::printf("rows observed   : %d\n", kRows);
  std::printf("attribute space : %u distinct values\n", rows.FeatureDimension());
  std::printf("model memory    : %zu bytes\n\n", model.MemoryCostBytes());

  std::printf("Most outlier-indicative attribute values (largest signed weights):\n");
  std::printf("%-10s %10s %14s %12s %9s\n", "attribute", "weight", "relative-risk",
              "occurrences", "planted");
  int shown = 0;
  for (const FeatureWeight& fw : explainer.TopIndicative(12)) {
    ++shown;
    (void)shown;
    std::printf("%-10u %10.3f %14.2f %12llu %9s\n", fw.feature, fw.weight,
                exact.RelativeRisk(fw.feature),
                static_cast<unsigned long long>(exact.Occurrences(fw.feature)),
                rows.high_risk_features().count(fw.feature) ? "yes" : "no");
  }
  std::printf("\n(A relative risk of r means the attribute makes a row r times\n"
              " more likely to be an outlier; 'planted' marks ground truth.)\n");
  return 0;
}
