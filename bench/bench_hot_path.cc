// Hot-path microbenchmark: single-threaded updates/sec and queries/sec for
// the WM-Sketch, AWM-Sketch, and feature hashing at the Table 2 best-config
// shapes, with the AVX2 kernels toggled on and off at runtime so one run
// reports the scalar-vs-SIMD speedup on this machine.
//
//   ./bench_hot_path [--json BENCH_hot_path.json] [--reps N]
//                    [--libsvm data.txt[.gz]] [--profile profile.json]
//                    [--dump-profile out.json]
//
// By default the stream is the synthetic RCV1-like generator. --libsvm
// measures a real dataset instead (rows suffixed with the file stem);
// --profile additionally replays a committed sparsity profile (rows suffixed
// with the profile name) — see bench/profiles/ and ResolveBenchStreams.
//
// Rows (one per config × kernel path):
//   updates_per_sec          batched ingest through Learner::UpdateBatch
//   predicts_per_sec         per-call PredictMargin on a trained model
//   batch_predicts_per_sec   chunked Learner::PredictBatch (the serving path)
//   estimates_per_sec        per-call WeightEstimate point queries
//   batch_estimates_per_sec  chunked Learner::EstimateBatch (wide gathers)
//   hashes_per_update        only under -DWMS_HASH_STATS=ON (the field is
//                            omitted otherwise; the single-hash invariant
//                            makes it exactly mean(nnz)·depth)
//
// Each (config, kernel) cell is measured --reps times (default 2) and the
// best rate per metric is kept — the standard microbenchmark noise guard,
// which matters doubly here because scalar and AVX2 share most code and
// should never differ by more than real kernel effects.
//
// Stream lengths scale with WMS_BENCH_SCALE like every other bench.

#include <chrono>
#include <cstdint>

#include "bench/bench_common.h"
#include "hash/tabulation.h"
#include "util/simd.h"

namespace wmsketch::bench {
namespace {

struct HotConfig {
  const char* label;
  Method method;
  uint32_t width;
  uint32_t depth;
  size_t heap;
};

// The Table 2 shape families: WM keeps width at 128–256 and grows depth;
// AWM pairs a depth-1 sketch with an active set of half the budget; feature
// hashing spends the whole budget on one row of weights.
constexpr HotConfig kConfigs[] = {
    {"wm_w256_d3", Method::kWmSketch, 256, 3, 128},
    {"wm_w256_d5", Method::kWmSketch, 256, 5, 128},
    {"wm_w128_d7", Method::kWmSketch, 128, 7, 128},
    {"awm_w256_s256", Method::kAwmSketch, 256, 1, 256},
    {"awm_w512_s512", Method::kAwmSketch, 512, 1, 512},
    {"hash_w4096", Method::kFeatureHashing, 4096, 0, 0},
};

Learner BuildConfig(const HotConfig& c) {
  LearnerBuilder b = PaperBuilder(1e-6, 77).SetMethod(c.method).SetWidth(c.width);
  if (c.depth > 0) b.SetDepth(c.depth);
  if (c.heap > 0) b.SetHeapCapacity(c.heap);
  return BuildOrDie(b.Build());
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Throughput {
  double updates_per_sec = 0.0;
  double predicts_per_sec = 0.0;
  double batch_predicts_per_sec = 0.0;
  double estimates_per_sec = 0.0;
  double batch_estimates_per_sec = 0.0;
  double hashes_per_update = -1.0;
  double margin_checksum = 0.0;  // defeats dead-code elimination; printed

  void MergeBest(const Throughput& other) {
    updates_per_sec = std::max(updates_per_sec, other.updates_per_sec);
    predicts_per_sec = std::max(predicts_per_sec, other.predicts_per_sec);
    batch_predicts_per_sec =
        std::max(batch_predicts_per_sec, other.batch_predicts_per_sec);
    estimates_per_sec = std::max(estimates_per_sec, other.estimates_per_sec);
    batch_estimates_per_sec =
        std::max(batch_estimates_per_sec, other.batch_estimates_per_sec);
    hashes_per_update = std::max(hashes_per_update, other.hashes_per_update);
    margin_checksum = other.margin_checksum;  // identical across reps
  }
};

// Every phase repeats its workload until the measured window reaches this
// floor: a rate read off a few milliseconds is one scheduler hiccup away
// from nonsense, and the CI gate runs on small WMS_BENCH_SCALE streams
// where fixed counts would give exactly such windows.
constexpr double kMinWindowSeconds = 0.12;

template <typename Workload>
double RatePerSec(size_t ops_per_pass, Workload&& workload) {
  size_t passes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto t1 = t0;
  do {
    workload();
    ++passes;
    t1 = std::chrono::steady_clock::now();
  } while (Seconds(t0, t1) < kMinWindowSeconds);
  return static_cast<double>(ops_per_pass) * static_cast<double>(passes) /
         Seconds(t0, t1);
}

// Keeps the timed read loops observable without polluting the emitted
// checksum (which must stay deterministic — see Measure).
volatile double g_timing_sink = 0.0;

Throughput Measure(const HotConfig& c, const std::vector<Example>& stream,
                   uint32_t dimension) {
  constexpr size_t kChunk = 512;
  Throughput out;

  // Timed ingest on a throwaway instance: RatePerSec repeats the sweep a
  // scheduler-dependent number of passes, so the resulting state must not
  // feed the (deterministic) checksum below.
  {
    Learner timing_model = BuildConfig(c);
    // Warm-up: a few chunks so tables/heaps leave their all-zero cold state.
    const size_t warm = std::min<size_t>(2 * kChunk, stream.size() / 4);
    timing_model.UpdateBatch(std::span<const Example>(stream.data(), warm));
    const size_t updates = stream.size() - warm;
#ifdef WMS_HASH_STATS
    g_hash_evaluations = 0;
    uint64_t hash_passes = 0;
#endif
    out.updates_per_sec = RatePerSec(updates, [&] {
      for (size_t at = warm; at < stream.size(); at += kChunk) {
        const size_t n = std::min(kChunk, stream.size() - at);
        timing_model.UpdateBatch(std::span<const Example>(stream.data() + at, n));
      }
#ifdef WMS_HASH_STATS
      ++hash_passes;
#endif
    });
#ifdef WMS_HASH_STATS
    out.hashes_per_update = static_cast<double>(g_hash_evaluations) /
                            static_cast<double>(updates * hash_passes);
#endif
  }

  // Deterministic model state for every read measurement and the checksum:
  // exactly one pass over the stream, independent of timing pass counts.
  Learner model = BuildConfig(c);
  model.UpdateBatch(stream);

  double sink = 0.0;

  // Per-call predicts (reads don't mutate, so timing on `model` is fine).
  const size_t predicts = std::min<size_t>(stream.size(), 20000);
  out.predicts_per_sec = RatePerSec(predicts, [&] {
    for (size_t i = 0; i < predicts; ++i) sink += model.PredictMargin(stream[i].x);
  });

  // Batched predicts (the serving read path): chunked like ingest.
  std::vector<double> margins;
  out.batch_predicts_per_sec = RatePerSec(predicts, [&] {
    for (size_t at = 0; at < predicts; at += kChunk) {
      const size_t n = std::min(kChunk, predicts - at);
      margins.clear();
      model.PredictBatch(std::span<const Example>(stream.data() + at, n), &margins);
    }
    sink += margins.empty() ? 0.0 : margins.back();
  });

  // Per-call point estimates.
  const size_t estimates = 200000;
  out.estimates_per_sec = RatePerSec(estimates, [&] {
    SplitMix64 ids(99);
    for (size_t i = 0; i < estimates; ++i) {
      sink += model.WeightEstimate(static_cast<uint32_t>(ids.Next() % dimension));
    }
  });

  // Batched point estimates (hash-once + one wide gather per chunk).
  std::vector<uint32_t> keys(kChunk);
  std::vector<float> est;
  out.batch_estimates_per_sec = RatePerSec(estimates, [&] {
    SplitMix64 bids(99);
    for (size_t at = 0; at < estimates; at += kChunk) {
      const size_t n = std::min(kChunk, estimates - at);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<uint32_t>(bids.Next() % dimension);
      }
      est.clear();
      model.EstimateBatch(std::span<const uint32_t>(keys.data(), n), &est);
    }
    sink += est.empty() ? 0.0 : static_cast<double>(est.back());
  });
  g_timing_sink = g_timing_sink + sink;

  // The deterministic checksum: one fixed pass over per-call and batched
  // reads of the one-pass model. Identical across reps by construction, and
  // identical across kernel paths whenever the read kernels honor their
  // bit-identity contract — a scalar-vs-avx2 checksum mismatch in the JSON
  // is a kernel bug, not noise.
  double checksum = 0.0;
  const size_t check_predicts = std::min<size_t>(predicts, 2000);
  for (size_t i = 0; i < check_predicts; ++i) {
    checksum += model.PredictMargin(stream[i].x);
  }
  margins.clear();
  model.PredictBatch(std::span<const Example>(stream.data(), check_predicts), &margins);
  for (const double m : margins) checksum += m;
  SplitMix64 check_ids(99);
  std::vector<uint32_t> check_keys(20000);
  for (uint32_t& k : check_keys) {
    k = static_cast<uint32_t>(check_ids.Next() % dimension);
  }
  for (const uint32_t k : check_keys) checksum += model.WeightEstimate(k);
  est.clear();
  model.EstimateBatch(check_keys, &est);
  for (const float e : est) checksum += static_cast<double>(e);
  out.margin_checksum = checksum;
  return out;
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;

  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(120000);
  const int reps = IntFlagArg(argc, argv, "--reps", 2);
  const std::vector<BenchStreamSpec> streams =
      ResolveBenchStreams(argc, argv, profile, examples, 88);
  CalibrateKernelsBeforeTiming();

  Banner("Hot path — single-threaded throughput (Table 2 configs, " +
         std::to_string(streams.front().examples.size()) + " examples, best of " +
         std::to_string(reps) + ")");
  std::printf("simd available: %s (compiled %s)\n", simd::Available() ? "yes" : "no",
#ifdef WMS_SIMD
              "in"
#else
              "out"
#endif
  );
  PrintRow({"config", "kernel", "updates/s", "predicts/s", "batchpred/s",
            "estimates/s", "batchest/s", "hashes/upd"});

  BenchJson json("hot_path");
  for (const BenchStreamSpec& spec : streams) {
    // Kernel paths alternate within each rep (pairwise per config) AND the
    // within-pair order flips every rep, so frequency/steal/thermal drift hits
    // both paths alike — the committed baseline compares them row-against-row,
    // and a kernel that only "wins" because it ran in the systematically
    // quieter slot of each pair would poison the dispatch conclusions.
    const bool kernel_paths[] = {false, true};
    const size_t paths = simd::Available() ? 2 : 1;
    std::vector<Throughput> best(std::size(kConfigs) * paths);
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t ci = 0; ci < std::size(kConfigs); ++ci) {
        for (size_t slot = 0; slot < paths; ++slot) {
          const size_t k = (rep % 2 == 0) ? slot : paths - 1 - slot;
          simd::SetEnabled(kernel_paths[k]);
          best[ci * paths + k].MergeBest(Measure(kConfigs[ci], spec.examples, spec.dimension));
        }
      }
    }
    for (size_t k = 0; k < paths; ++k) {
      simd::SetEnabled(kernel_paths[k]);
      for (size_t ci = 0; ci < std::size(kConfigs); ++ci) {
        const HotConfig& c = kConfigs[ci];
        const Throughput& t = best[ci * paths + k];
        const std::string label = c.label + spec.suffix;
        PrintRow({label, simd::ActiveKernel(), Fmt(t.updates_per_sec, 0),
                  Fmt(t.predicts_per_sec, 0), Fmt(t.batch_predicts_per_sec, 0),
                  Fmt(t.estimates_per_sec, 0), Fmt(t.batch_estimates_per_sec, 0),
                  t.hashes_per_update < 0 ? "n/a" : Fmt(t.hashes_per_update, 1)});
        json.Row()
            .Str("config", label)
            .Str("method", MethodName(c.method))
            .Num("width", c.width)
            .Num("depth", c.depth)
            .Num("heap", static_cast<double>(c.heap))
            .Str("kernel", simd::ActiveKernel())
            .Num("updates_per_sec", t.updates_per_sec)
            .Num("predicts_per_sec", t.predicts_per_sec)
            .Num("batch_predicts_per_sec", t.batch_predicts_per_sec)
            .Num("estimates_per_sec", t.estimates_per_sec)
            .Num("batch_estimates_per_sec", t.batch_estimates_per_sec)
            .Num("checksum", t.margin_checksum);
#ifdef WMS_HASH_STATS
        // Only emitted when the counter is actually compiled in — a -1
        // placeholder in the committed baseline reads like a measurement.
        json.Num("hashes_per_update", t.hashes_per_update);
#endif
      }
    }
  }
  simd::SetEnabled(true);  // restore the default for anything after us
  json.WriteIfRequested(argc, argv);
  return 0;
}
