// Hot-path microbenchmark: single-threaded updates/sec and queries/sec for
// the WM-Sketch, AWM-Sketch, and feature hashing at the Table 2 best-config
// shapes, with the AVX2 kernels toggled on and off at runtime so one run
// reports the scalar-vs-SIMD speedup on this machine.
//
//   ./bench_hot_path [--json BENCH_hot_path.json]
//
// Rows (one per config × kernel path):
//   updates_per_sec    batched ingest through Learner::UpdateBatch
//   predicts_per_sec   PredictMargin on a trained model (no state change)
//   estimates_per_sec  WeightEstimate point queries over random feature ids
//   hashes_per_update  measured only under -DWMS_HASH_STATS=ON, else -1;
//                      the single-hash invariant makes this exactly
//                      mean(nnz)·depth
//
// Stream lengths scale with WMS_BENCH_SCALE like every other bench.

#include <chrono>
#include <cstdint>

#include "bench/bench_common.h"
#include "hash/tabulation.h"
#include "util/simd.h"

namespace wmsketch::bench {
namespace {

struct HotConfig {
  const char* label;
  Method method;
  uint32_t width;
  uint32_t depth;
  size_t heap;
};

// The Table 2 shape families: WM keeps width at 128–256 and grows depth;
// AWM pairs a depth-1 sketch with an active set of half the budget; feature
// hashing spends the whole budget on one row of weights.
constexpr HotConfig kConfigs[] = {
    {"wm_w256_d3", Method::kWmSketch, 256, 3, 128},
    {"wm_w256_d5", Method::kWmSketch, 256, 5, 128},
    {"wm_w128_d7", Method::kWmSketch, 128, 7, 128},
    {"awm_w256_s256", Method::kAwmSketch, 256, 1, 256},
    {"awm_w512_s512", Method::kAwmSketch, 512, 1, 512},
    {"hash_w4096", Method::kFeatureHashing, 4096, 0, 0},
};

Learner BuildConfig(const HotConfig& c) {
  LearnerBuilder b = PaperBuilder(1e-6, 77).SetMethod(c.method).SetWidth(c.width);
  if (c.depth > 0) b.SetDepth(c.depth);
  if (c.heap > 0) b.SetHeapCapacity(c.heap);
  return BuildOrDie(b.Build());
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Throughput {
  double updates_per_sec = 0.0;
  double predicts_per_sec = 0.0;
  double estimates_per_sec = 0.0;
  double hashes_per_update = -1.0;
  double margin_checksum = 0.0;  // defeats dead-code elimination; printed
};

Throughput Measure(const HotConfig& c, const std::vector<Example>& stream,
                   uint32_t dimension) {
  Learner model = BuildConfig(c);
  constexpr size_t kChunk = 512;

  // Warm-up: a few chunks so tables/heaps leave their all-zero cold state.
  const size_t warm = std::min<size_t>(2 * kChunk, stream.size() / 4);
  model.UpdateBatch(std::span<const Example>(stream.data(), warm));

  Throughput out;
#ifdef WMS_HASH_STATS
  g_hash_evaluations = 0;
#endif
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t at = warm; at < stream.size(); at += kChunk) {
    const size_t n = std::min(kChunk, stream.size() - at);
    model.UpdateBatch(std::span<const Example>(stream.data() + at, n));
  }
  const auto t1 = std::chrono::steady_clock::now();
  const size_t updates = stream.size() - warm;
  out.updates_per_sec = static_cast<double>(updates) / Seconds(t0, t1);
#ifdef WMS_HASH_STATS
  out.hashes_per_update =
      static_cast<double>(g_hash_evaluations) / static_cast<double>(updates);
#endif

  const size_t predicts = std::min<size_t>(stream.size(), 20000);
  const auto t2 = std::chrono::steady_clock::now();
  double checksum = 0.0;
  for (size_t i = 0; i < predicts; ++i) checksum += model.PredictMargin(stream[i].x);
  const auto t3 = std::chrono::steady_clock::now();
  out.predicts_per_sec = static_cast<double>(predicts) / Seconds(t2, t3);

  const size_t estimates = 200000;
  SplitMix64 ids(99);
  const auto t4 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < estimates; ++i) {
    checksum += model.WeightEstimate(static_cast<uint32_t>(ids.Next() % dimension));
  }
  const auto t5 = std::chrono::steady_clock::now();
  out.estimates_per_sec = static_cast<double>(estimates) / Seconds(t4, t5);
  out.margin_checksum = checksum;
  return out;
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;

  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(120000);
  SyntheticClassificationGen gen(profile, 88);
  std::vector<Example> stream;
  stream.reserve(static_cast<size_t>(examples));
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());

  Banner("Hot path — single-threaded throughput (Table 2 configs, " +
         std::to_string(examples) + " examples)");
  std::printf("simd available: %s (compiled %s)\n", simd::Available() ? "yes" : "no",
#ifdef WMS_SIMD
              "in"
#else
              "out"
#endif
  );
  PrintRow({"config", "kernel", "updates/s", "predicts/s", "estimates/s", "hashes/upd"});

  BenchJson json("hot_path");
  // Scalar first so the committed baseline's scalar rows are independent of
  // whether the machine at hand has AVX2 at all.
  const bool kernel_paths[] = {false, true};
  for (const bool want_simd : kernel_paths) {
    if (want_simd && !simd::Available()) continue;
    simd::SetEnabled(want_simd);
    for (const HotConfig& c : kConfigs) {
      const Throughput t = Measure(c, stream, profile.dimension);
      PrintRow({c.label, simd::ActiveKernel(), Fmt(t.updates_per_sec, 0),
                Fmt(t.predicts_per_sec, 0), Fmt(t.estimates_per_sec, 0),
                t.hashes_per_update < 0 ? "n/a" : Fmt(t.hashes_per_update, 1)});
      json.Row()
          .Str("config", c.label)
          .Str("method", MethodName(c.method))
          .Num("width", c.width)
          .Num("depth", c.depth)
          .Num("heap", static_cast<double>(c.heap))
          .Str("kernel", simd::ActiveKernel())
          .Num("updates_per_sec", t.updates_per_sec)
          .Num("predicts_per_sec", t.predicts_per_sec)
          .Num("estimates_per_sec", t.estimates_per_sec)
          .Num("hashes_per_update", t.hashes_per_update)
          .Num("checksum", t.margin_checksum);
    }
  }
  simd::SetEnabled(true);  // restore the default for anything after us
  json.WriteIfRequested(argc, argv);
  return 0;
}
