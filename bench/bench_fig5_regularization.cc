// Figure 5: relative ℓ2 error of top-K AWM-Sketch estimates as a function of
// the ℓ2-regularization strength λ ∈ {1e-3, 1e-4, 1e-5, 1e-6}, on the RCV1-
// and URL-profile streams under an 8 KB budget.
//
// Expected shape (paper): higher λ ⇒ lower recovery error (both the true
// weights and the sketched weights shrink toward zero, so the sketch tail
// causes relatively less damage).

#include "bench/bench_common.h"

namespace wmsketch::bench {
namespace {

void RunDataset(const ClassificationProfile& profile, int examples) {
  Banner("Fig 5 — AWM RelErr@K vs lambda (" + profile.name + ", 8KB)");
  PrintRow({"lambda", "K=16", "K=32", "K=64", "K=128"});
  for (const double lambda : {1e-3, 1e-4, 1e-5, 1e-6}) {
    Learner model = BuildOrDie(
        PaperBuilder(lambda, 77).SetMethod(Method::kAwmSketch).SetBudgetBytes(KiB(8)).Build());
    DenseLinearModel reference(profile.dimension, PaperOptions(lambda, 77));
    SyntheticClassificationGen gen(profile, 78);
    for (int i = 0; i < examples; ++i) {
      const Example ex = gen.Next();
      model.Update(ex);
      reference.Update(ex.x, ex.y);
    }
    const std::vector<float> w_star = reference.Weights();
    const LearnerSnapshot snap = model.Snapshot(128);
    std::vector<std::string> row = {Fmt(lambda, 6)};
    for (const size_t k : {16u, 32u, 64u, 128u}) {
      row.push_back(Fmt(RelErrTopK(snap.TopK(k), w_star, k)));
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  RunDataset(ClassificationProfile::Rcv1Like(), ScaledCount(100000));
  RunDataset(ClassificationProfile::UrlLike(), ScaledCount(70000));
  return 0;
}
