// Parallel scaling of the sharded training engine (src/engine/): sustained
// updates/sec at 1/2/4/8 shards vs. the plain sequential Learner on the
// identical synthetic classification stream, plus the recovery-quality cost
// of sharding (RelErr@K of each collapsed model against the uncompressed
// reference, compared with the sequential learner's).
//
// Expected shape: near-linear updates/sec scaling while shard count <=
// physical cores (the workers share nothing between syncs), flat or
// declining beyond; rel_err within a few percent of sequential at every
// shard count (the schedule-matched mixing rule, see src/engine/).
//
//   ./bench_parallel_scaling [--json BENCH_parallel_scaling.json]

#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "engine/sharded_learner.h"

namespace wmsketch::bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct ScalingRow {
  std::string mode;
  uint32_t shards = 0;
  double updates_per_sec = 0.0;
  double rel_err = 0.0;
};

int Run(int argc, char** argv) {
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(400000);
  const size_t kTopK = 128;
  const double lambda = 1e-6;
  const uint64_t seed = 21;
  const uint64_t kSyncInterval = 16384;

  Banner("Parallel scaling — awm 16KB, rcv1 profile, " + std::to_string(examples) +
         " examples, " + std::to_string(std::thread::hardware_concurrency()) +
         " hardware threads");

  std::vector<Example> stream;
  stream.reserve(static_cast<size_t>(examples));
  SyntheticClassificationGen gen(profile, seed ^ 0xabcdef12345ULL);
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());

  // Uncompressed reference for recovery quality (untimed).
  DenseLinearModel reference(profile.dimension, PaperOptions(lambda, seed));
  for (const Example& ex : stream) reference.Update(ex.x, ex.y);
  const std::vector<float> w_star = reference.Weights();

  const LearnerBuilder builder =
      PaperBuilder(lambda, seed).SetMethod(Method::kAwmSketch).SetBudgetBytes(KiB(16));

  std::vector<ScalingRow> rows;

  {
    Learner sequential = BuildOrDie(builder.Build());
    const auto begin = Clock::now();
    sequential.UpdateBatch(stream);
    const double secs = Seconds(begin, Clock::now());
    rows.push_back(ScalingRow{"sequential", 0, examples / secs,
                              RelErrTopK(sequential.TopK(kTopK), w_star, kTopK)});
  }

  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    LearnerBuilder sharded_builder = builder;
    sharded_builder.Shards(shards).SetSyncInterval(kSyncInterval);
    Result<ShardedLearner> engine = sharded_builder.BuildSharded();
    if (!engine.ok()) {
      std::fprintf(stderr, "BuildSharded failed: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    // Timed region covers ingestion *and* Collapse: the cost of producing a
    // final queryable model, not just of filling queues.
    const auto begin = Clock::now();
    const Status pushed = engine.value().PushBatch(stream);
    if (!pushed.ok()) {
      std::fprintf(stderr, "PushBatch failed: %s\n", pushed.ToString().c_str());
      return 1;
    }
    Result<Learner> collapsed = engine.value().Collapse();
    const double secs = Seconds(begin, Clock::now());
    if (!collapsed.ok()) {
      std::fprintf(stderr, "Collapse failed: %s\n", collapsed.status().ToString().c_str());
      return 1;
    }
    rows.push_back(ScalingRow{"sharded", shards, examples / secs,
                              RelErrTopK(collapsed.value().TopK(kTopK), w_star, kTopK)});
  }

  const double base_ups = rows[1].updates_per_sec;  // 1-shard engine
  const double seq_err = rows[0].rel_err;
  PrintRow({"mode", "shards", "updates/s", "speedup", "rel_err", "err_delta"});
  BenchJson json("parallel_scaling");
  for (const ScalingRow& row : rows) {
    // Throughput relative to the 1-shard engine for every row — for the
    // sequential learner this is the (real, measured) engine overhead ratio.
    const double speedup = row.updates_per_sec / base_ups;
    PrintRow({row.mode, row.shards == 0 ? "-" : std::to_string(row.shards),
              Fmt(row.updates_per_sec, 0), Fmt(speedup, 2), Fmt(row.rel_err),
              Fmt(row.rel_err - seq_err)});
    json.Row()
        .Str("mode", row.mode)
        .Num("shards", row.shards)
        .Num("updates_per_sec", row.updates_per_sec)
        .Num("speedup_vs_1shard", speedup)
        .Num("rel_err", row.rel_err)
        .Num("rel_err_delta_vs_sequential", row.rel_err - seq_err);
  }
  json.WriteIfRequested(argc, argv);
  return 0;
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) { return wmsketch::bench::Run(argc, argv); }
