// Figure 11: median stream frequency and median exact PMI of the top pairs
// retrieved by the AWM-Sketch PMI estimator, as functions of the sketch
// width (2^10..2^16) and the regularization strength λ.
//
// Expected shape (paper): small widths ⇒ heavy collisions ⇒ the retrieved
// pairs are frequent, low-PMI noise; larger widths retrieve rarer,
// higher-PMI pairs. Lower λ also favors rarer pairs (less decay pressure),
// while higher λ discards low-frequency pairs.

#include <unordered_map>

#include "apps/pmi.h"
#include "bench/bench_common.h"
#include "datagen/corpus_gen.h"
#include "metrics/correlation.h"
#include "metrics/pmi.h"
#include "stream/window.h"

namespace wmsketch::bench {
namespace {

constexpr uint32_t kVocab = 8192;
constexpr uint32_t kCollocations = 96;
constexpr uint64_t kCorpusSeed = 3001;

struct ExactCounts {
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  std::vector<uint64_t> unigram_counts;
  uint64_t total_pairs = 0;
  uint64_t total_tokens = 0;
};

uint64_t PairKey(uint32_t u, uint32_t v) { return (static_cast<uint64_t>(u) << 32) | v; }

// Replays the corpus, counting exactly the candidate pairs (plus unigrams).
ExactCounts CountCandidates(const std::vector<PmiPair>& candidates, int tokens,
                            size_t window) {
  ExactCounts out;
  out.unigram_counts.assign(kVocab, 0);
  for (const PmiPair& p : candidates) out.pair_counts[PairKey(p.u, p.v)] = 0;
  CorpusGenerator corpus(kVocab, kCollocations, kCorpusSeed);
  SlidingWindowPairs win(window);
  for (int i = 0; i < tokens; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    if (boundary) win.Reset();
    ++out.total_tokens;
    ++out.unigram_counts[tok];
    win.Push(tok, [&out](uint32_t u, uint32_t v) {
      ++out.total_pairs;
      auto it = out.pair_counts.find(PairKey(u, v));
      if (it != out.pair_counts.end()) ++it->second;
    });
  }
  return out;
}

void RunCell(uint32_t width, double lambda, int tokens) {
  PmiOptions options;
  options.sketch = AwmSketchConfig{width, 1, 1024};
  options.learner.lambda = lambda;
  options.learner.seed = 3100;
  StreamingPmiEstimator estimator(options);
  CorpusGenerator corpus(kVocab, kCollocations, kCorpusSeed);
  for (int i = 0; i < tokens; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    estimator.ObserveToken(tok, boundary);
  }
  const std::vector<PmiPair> top = estimator.TopPairs(48);
  if (top.empty()) {
    PrintRow({std::to_string(width), Fmt(lambda, 8), "-", "-", "0"});
    return;
  }
  const ExactCounts exact = CountCandidates(top, tokens, options.window);
  std::vector<double> freqs;
  std::vector<double> pmis;
  for (const PmiPair& p : top) {
    const uint64_t count = exact.pair_counts.at(PairKey(p.u, p.v));
    if (count == 0) continue;  // retrieved noise that never truly co-occurred
    freqs.push_back(static_cast<double>(count) / static_cast<double>(exact.total_pairs));
    pmis.push_back(PmiFromCounts(count, exact.total_pairs, exact.unigram_counts[p.u],
                                 exact.unigram_counts[p.v], exact.total_tokens));
  }
  PrintRow({std::to_string(width), Fmt(lambda, 8), Fmt(Median(freqs) * 1e5, 3),
            Fmt(Median(pmis), 3), std::to_string(top.size())});
}

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const int tokens = ScaledCount(600000);
  Banner("Fig 11 — retrieved-pair median frequency (x1e-5) and exact PMI vs width");
  PrintRow({"width", "lambda", "med-freq", "med-PMI", "retrieved"});
  for (const double lambda : {1e-6, 1e-7, 1e-8}) {
    for (const uint32_t width : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
      RunCell(width, lambda, tokens);
    }
  }
  return 0;
}
