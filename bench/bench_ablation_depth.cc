// Ablation A5 (DESIGN.md): WM-Sketch depth at a fixed total size k. Depth
// buys median disambiguation but costs width (more collisions per row) and
// update time. The paper's Table 2 optima pick substantial depth for the
// basic WM-Sketch; this sweep shows the trade-off curve directly, plus the
// per-update time scaling linearly with depth.

#include <chrono>

#include "bench/bench_common.h"

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(60000);
  const size_t k = 128;
  const uint32_t total_cells = 2048;  // fixed k = width * depth
  const LearnerOptions opts = PaperOptions(1e-6, 95);

  Banner("Ablation A5 — WM depth sweep at fixed k = 2048 cells (+1KB heap, rcv1)");
  PrintRow({"depth", "width", "RelErr@128", "error-rate", "us/update"});
  for (const uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const uint32_t width = total_cells / depth;
    Learner model = BuildOrDie(PaperBuilder(1e-6, 95)
                                   .SetMethod(Method::kWmSketch)
                                   .SetWidth(width)
                                   .SetDepth(depth)
                                   .SetHeapCapacity(128)
                                   .Build());
    DenseLinearModel reference(profile.dimension, opts);
    OnlineErrorRate err;
    SyntheticClassificationGen gen(profile, 96);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < examples; ++i) {
      const Example ex = gen.Next();
      err.Record(model.Update(ex), ex.y);
      reference.Update(ex.x, ex.y);
    }
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count() / examples;
    PrintRow({std::to_string(depth), std::to_string(width),
              Fmt(RelErrTopK(model.Snapshot(k).top_k(), reference.Weights(), k)),
              Fmt(err.Rate()), Fmt(us, 2)});
  }
  return 0;
}
