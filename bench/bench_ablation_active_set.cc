// Ablation A1 (DESIGN.md): active set vs. multiple hashing. At an identical
// byte budget, compare (a) the AWM-Sketch (exact heap + depth-1 sketch),
// (b) the basic WM-Sketch with paper-optimal depth, (c) a depth-1 WM-Sketch
// (passive heap only), and (d) pure feature hashing — isolating how much of
// the AWM's win comes from *exact storage* of heavy weights versus from
// median disambiguation.
//
// Sec. 9's claim: the active set is the better disambiguation mechanism —
// (a) < (b) < (c) on recovery error, with (d) far behind.

#include "bench/bench_common.h"

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(80000);
  const size_t k = 128;
  const LearnerOptions opts = PaperOptions(1e-6, 91);

  Banner("Ablation A1 — active set vs multiple hashing (8KB, rcv1)");
  PrintRow({"variant", "RelErr@128", "error-rate", "bytes"});

  struct Variant {
    std::string name;
    BudgetConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"awm (heap + d1 sketch)", DefaultConfig(Method::kAwmSketch, KiB(8))});
  variants.push_back({"wm depth-14 (paper opt)", DefaultConfig(Method::kWmSketch, KiB(8))});
  BudgetConfig wm_d1;
  wm_d1.method = Method::kWmSketch;
  wm_d1.heap_capacity = 128;
  wm_d1.width = 1024;  // 1KB heap + 4KB sketch... widen to fill: 7KB/4 → 1024 (4KB)
  wm_d1.depth = 1;
  variants.push_back({"wm depth-1 (passive)", wm_d1});
  variants.push_back({"hash (no ids)", DefaultConfig(Method::kFeatureHashing, KiB(8))});

  for (const Variant& v : variants) {
    auto model = MakeClassifier(v.cfg, opts);
    DenseLinearModel reference(profile.dimension, opts);
    OnlineErrorRate err;
    SyntheticClassificationGen gen(profile, 92);
    for (int i = 0; i < examples; ++i) {
      const Example ex = gen.Next();
      err.Record(model->Update(ex.x, ex.y), ex.y);
      reference.Update(ex.x, ex.y);
    }
    std::vector<FeatureWeight> top = model->TopK(k);
    if (top.empty()) top = ScanTopK(*model, k, profile.dimension);
    PrintRow({v.name, Fmt(RelErrTopK(top, reference.Weights(), k)), Fmt(err.Rate()),
              std::to_string(model->MemoryCostBytes())});
  }
  return 0;
}
