// Ablation A1 (DESIGN.md): active set vs. multiple hashing. At an identical
// byte budget, compare (a) the AWM-Sketch (exact heap + depth-1 sketch),
// (b) the basic WM-Sketch with paper-optimal depth, (c) a depth-1 WM-Sketch
// (passive heap only), and (d) pure feature hashing — isolating how much of
// the AWM's win comes from *exact storage* of heavy weights versus from
// median disambiguation.
//
// Sec. 9's claim: the active set is the better disambiguation mechanism —
// (a) < (b) < (c) on recovery error, with (d) far behind.

#include "bench/bench_common.h"

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(80000);
  const size_t k = 128;
  const LearnerOptions opts = PaperOptions(1e-6, 91);

  Banner("Ablation A1 — active set vs multiple hashing (8KB, rcv1)");
  PrintRow({"variant", "RelErr@128", "error-rate", "bytes"});

  struct Variant {
    std::string name;
    BudgetConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {"awm (heap + d1 sketch)", DefaultConfig(Method::kAwmSketch, KiB(8)).value()});
  variants.push_back(
      {"wm depth-14 (paper opt)", DefaultConfig(Method::kWmSketch, KiB(8)).value()});
  BudgetConfig wm_d1;
  wm_d1.method = Method::kWmSketch;
  wm_d1.heap_capacity = 128;
  wm_d1.width = 1024;  // 1KB heap + 4KB sketch... widen to fill: 7KB/4 → 1024 (4KB)
  wm_d1.depth = 1;
  variants.push_back({"wm depth-1 (passive)", wm_d1});
  variants.push_back(
      {"hash (no ids)", DefaultConfig(Method::kFeatureHashing, KiB(8)).value()});

  for (const Variant& v : variants) {
    Learner model = BuildOrDie(PaperBuilder(1e-6, 91).SetConfig(v.cfg).Build());
    DenseLinearModel reference(profile.dimension, opts);
    OnlineErrorRate err;
    SyntheticClassificationGen gen(profile, 92);
    for (int i = 0; i < examples; ++i) {
      const Example ex = gen.Next();
      err.Record(model.Update(ex), ex.y);
      reference.Update(ex.x, ex.y);
    }
    const LearnerSnapshot snap = model.Snapshot(k);
    std::vector<FeatureWeight> top = snap.top_k();
    if (top.empty()) top = snap.ScanTopK(k, profile.dimension);
    PrintRow({v.name, Fmt(RelErrTopK(top, reference.Weights(), k)), Fmt(err.Rate()),
              std::to_string(snap.memory_cost_bytes())});
  }
  return 0;
}
