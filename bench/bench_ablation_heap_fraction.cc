// Ablation A4 (DESIGN.md): how should the AWM-Sketch split its budget
// between the exact active set and the tail sketch? The paper reports that
// "half the space to the active set and the remainder to a depth-1 sketch"
// uniformly performed best (Sec. 7.3); this bench sweeps the fraction.

#include "bench/bench_common.h"

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(60000);
  const size_t budget = KiB(8);
  const size_t k = 128;
  const LearnerOptions opts = PaperOptions(1e-6, 93);

  Banner("Ablation A4 — AWM budget split: active-set fraction sweep (8KB, rcv1)");
  PrintRow({"heap-fraction", "|S|", "width", "RelErr@128", "error-rate"});
  for (const double fraction : {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875}) {
    BudgetConfig cfg;
    cfg.method = Method::kAwmSketch;
    cfg.heap_capacity = static_cast<size_t>(budget * fraction) / HeapBytes(1);
    cfg.depth = 1;
    const size_t sketch_bytes = budget - HeapBytes(cfg.heap_capacity);
    uint32_t w = 64;
    while (TableBytes(w * 2) <= sketch_bytes) w *= 2;
    cfg.width = w;

    Learner model = BuildOrDie(PaperBuilder(1e-6, 93).SetConfig(cfg).Build());
    DenseLinearModel reference(profile.dimension, opts);
    OnlineErrorRate err;
    SyntheticClassificationGen gen(profile, 94);
    for (int i = 0; i < examples; ++i) {
      const Example ex = gen.Next();
      err.Record(model.Update(ex), ex.y);
      reference.Update(ex.x, ex.y);
    }
    PrintRow({Fmt(fraction, 3), std::to_string(cfg.heap_capacity),
              std::to_string(cfg.width),
              Fmt(RelErrTopK(model.Snapshot(k).top_k(), reference.Weights(), k)),
              Fmt(err.Rate())});
  }
  return 0;
}
