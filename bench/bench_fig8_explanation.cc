// Figure 8: distribution of exact relative risks among the top-2048 features
// retrieved by each explanation method on the FEC-profile disbursement
// stream (32 KB budget): heavy-hitters over the positive class, heavy-
// hitters over both classes, the memory-unconstrained logistic regression,
// and the AWM-Sketch.
//
// Expected shape (paper): the heavy-hitter rows concentrate mass near
// relative risk ≈ 1 (frequent-but-neutral attributes); the classifier-based
// rows put mass at the extremes of the risk scale.

#include <vector>

#include "apps/explanation.h"
#include "bench/bench_common.h"
#include "datagen/fec_gen.h"
#include "metrics/relative_risk.h"

namespace wmsketch::bench {
namespace {

constexpr size_t kTopK = 2048;

// Histogram of relative risks over bins [0,0.5), [0.5,1), ... [4.5,5), [5,inf).
std::vector<double> RiskHistogram(const std::vector<uint32_t>& features,
                                  const RelativeRiskTracker& exact) {
  std::vector<double> bins(11, 0.0);
  if (features.empty()) return bins;
  for (const uint32_t f : features) {
    const double r = exact.RelativeRisk(f);
    const size_t bin = std::min<size_t>(static_cast<size_t>(r / 0.5), bins.size() - 1);
    bins[bin] += 1.0;
  }
  for (double& b : bins) b /= static_cast<double>(features.size());
  return bins;
}

void PrintHistogram(const std::string& name, const std::vector<double>& bins) {
  std::vector<std::string> row = {name};
  for (const double b : bins) row.push_back(Fmt(b, 3));
  PrintRow(row);
}

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const int rows = ScaledCount(300000);

  FecLikeGenerator gen(2024);
  RelativeRiskTracker exact;

  // 32 KB AWM (the paper's budget for this experiment); the LR reference is
  // a dense model over the attribute space.
  LearnerOptions opts = PaperOptions(1e-6, 11);
  opts.rate = LearningRate::Constant(0.1);  // stationary 1-sparse objective
  Learner awm = BuildOrDie(LearnerBuilder()
                               .SetMethod(Method::kAwmSketch)
                               .SetWidth(4096)
                               .SetDepth(1)
                               .SetHeapCapacity(2048)
                               .SetLambda(1e-6)
                               .SetLearningRate(LearningRate::Constant(0.1))
                               .SetSeed(11)
                               .Build());
  StreamingExplainer awm_explainer(&awm, /*outlier_repeats=*/4);
  DenseLinearModel lr(gen.FeatureDimension(), opts, /*heap_capacity=*/kTopK);
  // The dense reference is not a budgeted Method, so it observes directly
  // (same 1-sparse feeding and class rebalancing as StreamingExplainer).
  const auto lr_observe = [&lr](const std::vector<uint32_t>& attributes, bool outlier) {
    const int8_t y = outlier ? 1 : -1;
    const uint32_t repeats = outlier ? 4 : 1;
    for (uint32_t r = 0; r < repeats; ++r) {
      for (const uint32_t f : attributes) lr.Update(SparseVector::OneHot(f), y);
    }
  };
  HeavyHitterExplainer hh_pos(kTopK, HeavyHitterExplainer::Mode::kPositiveOnly);
  HeavyHitterExplainer hh_both(kTopK, HeavyHitterExplainer::Mode::kBoth);

  for (int i = 0; i < rows; ++i) {
    const FecRow row = gen.Next();
    awm_explainer.Observe(row.attributes, row.outlier);
    lr_observe(row.attributes, row.outlier);
    hh_pos.Observe(row.attributes, row.outlier);
    hh_both.Observe(row.attributes, row.outlier);
    for (const uint32_t f : row.attributes) exact.Observe(f, row.outlier);
  }

  Banner("Fig 8 — relative-risk distribution of top-2048 retrieved features");
  std::vector<std::string> header = {"method"};
  for (int b = 0; b < 10; ++b) header.push_back(Fmt(b * 0.5, 1) + "-");
  header.push_back(">5");
  PrintRow(header);

  PrintHistogram("hh-positive", RiskHistogram(hh_pos.TopAttributes(kTopK), exact));
  PrintHistogram("hh-both", RiskHistogram(hh_both.TopAttributes(kTopK), exact));

  const auto extract = [](const std::vector<FeatureWeight>& fws) {
    std::vector<uint32_t> out;
    out.reserve(fws.size());
    for (const FeatureWeight& fw : fws) out.push_back(fw.feature);
    return out;
  };
  PrintHistogram("lr-exact", RiskHistogram(extract(lr.TopK(kTopK)), exact));
  PrintHistogram("awm", RiskHistogram(extract(awm_explainer.TopAttributes(kTopK)), exact));

  std::printf("\n(32KB AWM footprint: %zu bytes; attribute space: %u features)\n",
              awm.MemoryCostBytes(), gen.FeatureDimension());
  return 0;
}
