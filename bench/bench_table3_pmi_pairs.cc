// Table 3: the top recovered token pairs with PMI estimated from the model
// weights vs. PMI computed from exact counts (left half), and the most
// frequent pairs in the corpus with their exact PMI (right half).
//
// Expected shape (paper): the top recovered pairs are genuine collocations
// whose estimated PMI tracks the exact PMI; the most *frequent* pairs (the
// ", the"-style combinations — here, low-rank token pairs) have PMI ≈ 0.

#include <algorithm>
#include <unordered_map>

#include "apps/pmi.h"
#include "bench/bench_common.h"
#include "datagen/corpus_gen.h"
#include "metrics/pmi.h"
#include "stream/window.h"

namespace wmsketch::bench {
namespace {

uint64_t PairKey(uint32_t u, uint32_t v) { return (static_cast<uint64_t>(u) << 32) | v; }

std::string PairName(uint32_t u, uint32_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "(%u,%u)", u, v);
  return buf;
}

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const int tokens = ScaledCount(800000);
  const uint32_t vocab = 16384;
  const uint64_t seed = 4001;

  PmiOptions options;
  options.sketch = AwmSketchConfig{1u << 16, 1, 1024};
  options.learner.lambda = 1e-7;
  options.learner.seed = 4002;
  StreamingPmiEstimator estimator(options);

  // Single pass: train the estimator while counting unigrams and the full
  // frequent-pair table (bounded: count only pairs of the 256 most frequent
  // tokens — those are the only candidates for "most common pair").
  CorpusGenerator corpus(vocab, 48, seed);
  std::vector<uint64_t> unigrams(vocab, 0);
  std::unordered_map<uint64_t, uint64_t> frequent_pairs;
  std::unordered_map<uint64_t, uint64_t> candidate_counts;  // filled lazily below
  uint64_t total_pairs = 0, total_tokens = 0;
  SlidingWindowPairs window(options.window);
  for (int i = 0; i < tokens; ++i) {
    bool boundary = false;
    const uint32_t tok = corpus.Next(&boundary);
    estimator.ObserveToken(tok, boundary);
    if (boundary) window.Reset();
    ++total_tokens;
    ++unigrams[tok];
    window.Push(tok, [&](uint32_t u, uint32_t v) {
      ++total_pairs;
      if (u < 256 && v < 256) ++frequent_pairs[PairKey(u, v)];
    });
  }

  // Exact counts for the retrieved pairs: second pass over the same corpus.
  const std::vector<PmiPair> top = estimator.TopPairs(10);
  for (const PmiPair& p : top) candidate_counts[PairKey(p.u, p.v)] = 0;
  {
    CorpusGenerator replay(vocab, 48, seed);
    SlidingWindowPairs rewin(options.window);
    for (int i = 0; i < tokens; ++i) {
      bool boundary = false;
      const uint32_t tok = replay.Next(&boundary);
      if (boundary) rewin.Reset();
      rewin.Push(tok, [&](uint32_t u, uint32_t v) {
        auto it = candidate_counts.find(PairKey(u, v));
        if (it != candidate_counts.end()) ++it->second;
      });
    }
  }

  Banner("Table 3 (left) — top recovered pairs: estimated vs exact PMI");
  PrintRow({"pair", "est-PMI", "exact-PMI", "count"});
  for (const PmiPair& p : top) {
    const uint64_t count = candidate_counts[PairKey(p.u, p.v)];
    const std::string pair_name = PairName(p.u, p.v);
    if (count == 0) {
      PrintRow({pair_name, Fmt(p.estimated_pmi, 3), "n/a", "0"});
      continue;
    }
    const double exact =
        PmiFromCounts(count, total_pairs, unigrams[p.u], unigrams[p.v], total_tokens);
    PrintRow({pair_name, Fmt(p.estimated_pmi, 3), Fmt(exact, 3), std::to_string(count)});
  }

  Banner("Table 3 (right) — most frequent pairs (PMI ~ 0 expected)");
  std::vector<std::pair<uint64_t, uint64_t>> freq(frequent_pairs.begin(),
                                                  frequent_pairs.end());
  std::sort(freq.begin(), freq.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  PrintRow({"pair", "count", "exact-PMI", "est-PMI"});
  for (size_t i = 0; i < std::min<size_t>(4, freq.size()); ++i) {
    const uint32_t u = static_cast<uint32_t>(freq[i].first >> 32);
    const uint32_t v = static_cast<uint32_t>(freq[i].first & 0xffffffffu);
    const double exact =
        PmiFromCounts(freq[i].second, total_pairs, unigrams[u], unigrams[v], total_tokens);
    PrintRow({PairName(u, v), std::to_string(freq[i].second), Fmt(exact, 3),
              Fmt(estimator.EstimatePmi(u, v), 3)});
  }
  std::printf("\n(sketch memory: %zu bytes; %llu true bigram examples)\n",
              estimator.MemoryCostBytes(),
              static_cast<unsigned long long>(estimator.positives_seen()));
  return 0;
}
