// Network serving load generator: closed-loop clients hammer an in-process
// wms_serve daemon over a loopback Unix-domain socket and report QPS plus
// p50/p99 per-request latency versus connection count and batch-cut policy.
//
//   ./bench_net_serving [--json BENCH_net_serving.json] [--readers N]
//                       [--socket-dir /tmp]
//
// Two policies on the same trained model:
//   naive     max_batch=1   — the server cuts a dispatch after every single
//                             request: one snapshot pin + one kernel call
//                             per arriving request (what a non-batching RPC
//                             front-end would do);
//   coalesce  max_batch=256 — concurrently-pending requests drain into one
//                             PredictBatch/EstimateBatch micro-batch (the
//                             tentpole path: one pin, one SIMD dispatch).
// Each (policy, connections) cell runs C closed-loop client threads issuing
// single-example predict requests; rows land next to bench_serving's
// in-process numbers so the network tax is measured, not guessed. A second
// section measures the version-keyed top-K cache: cold miss vs hot hit on
// the same connection, with the server's hit counters echoed into the row.
//
// JSON rows carry kernel tags "net-predict" / "net-topk" so check_perf.py
// normalizes the closed-loop QPS rows separately from the cache rows
// (--kernel net-predict, --metrics qps + --lower-better p99_us).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <unistd.h>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"

namespace wmsketch::bench {
namespace {

struct PolicyConfig {
  const char* label;
  size_t max_batch;
};

constexpr PolicyConfig kPolicies[] = {
    {"naive", 1},
    {"coalesce", 256},
};

constexpr int kConnectionCounts[] = {1, 2, 8};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct LoadResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double coalesce_mean = 0.0;  // requests per server-side batch dispatch
  double checksum = 0.0;
};

/// C closed-loop clients, each issuing `ops` single-example predicts.
LoadResult RunPredictLoad(const std::string& socket_path, net::ServingServer& server,
                          const std::vector<Example>& queries, int connections,
                          size_t ops_per_client) {
  std::atomic<bool> start{false};
  std::atomic<int> failures{0};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(connections));
  std::vector<double> checksums(static_cast<size_t>(connections), 0.0);
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(connections));

  const net::ServerStats before = server.stats();
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      Result<net::ServingClient> conn = net::ServingClient::ConnectUnix(socket_path);
      if (!conn.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      net::ServingClient client = std::move(conn).value();
      std::vector<double>& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(ops_per_client);
      size_t at = static_cast<size_t>(c) * 17 % queries.size();
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t op = 0; op < ops_per_client; ++op) {
        const std::span<const Example> one(queries.data() + at, 1);
        const auto t0 = std::chrono::steady_clock::now();
        Result<net::PredictResponse> resp = client.Predict(one);
        const auto t1 = std::chrono::steady_clock::now();
        if (!resp.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        lat.push_back(Seconds(t0, t1) * 1e6);
        checksums[static_cast<size_t>(c)] += resp.value().margins[0];
        at = (at + 1) % queries.size();
      }
    });
  }

  start.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::thread& t : clients) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_net_serving: %d client failures\n", failures.load());
    std::exit(1);
  }
  const net::ServerStats after = server.stats();

  LoadResult out;
  std::vector<double> all;
  for (int c = 0; c < connections; ++c) {
    all.insert(all.end(), latencies[static_cast<size_t>(c)].begin(),
               latencies[static_cast<size_t>(c)].end());
    out.checksum += checksums[static_cast<size_t>(c)];
  }
  out.qps = static_cast<double>(all.size()) / Seconds(t0, t1);
  out.p50_us = Percentile(all, 50.0);
  out.p99_us = Percentile(all, 99.0);
  const uint64_t batches = after.batches_dispatched - before.batches_dispatched;
  const uint64_t reqs = after.requests_batched - before.requests_batched;
  out.coalesce_mean =
      batches == 0 ? 0.0 : static_cast<double>(reqs) / static_cast<double>(batches);
  return out;
}

struct TopKResultRow {
  double cold_us = 0.0;  // first request against a fresh snapshot version
  double hot_qps = 0.0;
  double hot_p50_us = 0.0;
  double hot_p99_us = 0.0;
  double hit_rate = 0.0;  // server-side: hits / (hits + misses) for the run
};

TopKResultRow RunTopKLoad(const std::string& socket_path, net::ServingServer& server,
                          size_t ops) {
  Result<net::ServingClient> conn = net::ServingClient::ConnectUnix(socket_path);
  if (!conn.ok()) {
    std::fprintf(stderr, "bench_net_serving: %s\n", conn.status().ToString().c_str());
    std::exit(1);
  }
  net::ServingClient client = std::move(conn).value();
  const net::ServerStats before = server.stats();

  TopKResultRow out;
  const auto c0 = std::chrono::steady_clock::now();
  Result<net::TopKResponse> cold = client.TopK(64);
  const auto c1 = std::chrono::steady_clock::now();
  if (!cold.ok()) {
    std::fprintf(stderr, "bench_net_serving: %s\n", cold.status().ToString().c_str());
    std::exit(1);
  }
  out.cold_us = Seconds(c0, c1) * 1e6;

  std::vector<double> lat;
  lat.reserve(ops);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t op = 0; op < ops; ++op) {
    const auto h0 = std::chrono::steady_clock::now();
    Result<net::TopKResponse> hot = client.TopK(64);
    const auto h1 = std::chrono::steady_clock::now();
    if (!hot.ok()) {
      std::fprintf(stderr, "bench_net_serving: %s\n", hot.status().ToString().c_str());
      std::exit(1);
    }
    lat.push_back(Seconds(h0, h1) * 1e6);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const net::ServerStats after = server.stats();

  out.hot_qps = static_cast<double>(ops) / Seconds(t0, t1);
  out.hot_p50_us = Percentile(lat, 50.0);
  out.hot_p99_us = Percentile(lat, 99.0);
  const double hits = static_cast<double>(after.topk_cache_hits - before.topk_cache_hits);
  const double misses =
      static_cast<double>(after.topk_cache_misses - before.topk_cache_misses);
  out.hit_rate = hits + misses == 0.0 ? 0.0 : hits / (hits + misses);
  return out;
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;

  const int readers = IntFlagArg(argc, argv, "--readers", 2);
  std::string socket_dir = StrFlagArg(argc, argv, "--socket-dir");
  if (socket_dir.empty()) socket_dir = "/tmp";
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  CalibrateKernelsBeforeTiming();

  // One trained model behind every cell so policies compare like-for-like.
  Learner model = BuildOrDie(PaperBuilder(1e-6, 77)
                                 .SetMethod(Method::kAwmSketch)
                                 .SetWidth(256)
                                 .SetDepth(1)
                                 .SetHeapCapacity(256)
                                 .ServeEvery(0)
                                 .Build());
  SyntheticClassificationGen gen(profile, 88);
  std::vector<Example> stream;
  const int examples = ScaledCount(40000);
  stream.reserve(static_cast<size_t>(examples));
  for (int i = 0; i < examples; ++i) stream.push_back(gen.Next());
  model.UpdateBatch(stream);
  model.PublishServingSnapshot();
  const size_t ops_total = static_cast<size_t>(ScaledCount(24000));

  Banner("Network predict — closed-loop single-example requests over a loopback "
         "Unix socket, " + std::to_string(readers) + " reader threads (" +
         std::to_string(std::thread::hardware_concurrency()) + " hardware threads)");
  PrintRow({"policy", "conns", "qps", "p50_us", "p99_us", "coalesce"});

  BenchJson json("net_serving");
  for (const PolicyConfig& policy : kPolicies) {
    const std::string path = socket_dir + "/wms_bench_net_" + policy.label + "_" +
                             std::to_string(::getpid());
    net::ServerOptions options;
    options.unix_path = path;
    options.readers = readers;
    options.max_batch = policy.max_batch;
    Result<std::unique_ptr<net::ServingServer>> started = net::ServingServer::Start(
        options, [&] { return model.AcquireServingHandle(); });
    if (!started.ok()) {
      std::fprintf(stderr, "bench_net_serving: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<net::ServingServer> server = std::move(started).value();

    // Untimed warm-up: first-connection costs (page faults, allocator and
    // snapshot-pin warm-up on both sides) otherwise land entirely in the
    // first measured cell and skew its tail against the committed baseline.
    (void)RunPredictLoad(path, *server, stream, 2, 256);

    for (const int conns : kConnectionCounts) {
      const size_t per_client =
          std::max<size_t>(64, ops_total / static_cast<size_t>(conns));
      const LoadResult res =
          RunPredictLoad(path, *server, stream, conns, per_client);
      const std::string label =
          std::string("predict_c") + std::to_string(conns) + "_" + policy.label;
      PrintRow({label, std::to_string(conns), Fmt(res.qps, 0), Fmt(res.p50_us, 1),
                Fmt(res.p99_us, 1), Fmt(res.coalesce_mean, 2)});
      json.Row()
          .Str("config", label)
          .Str("base_config", policy.label)
          .Str("kernel", "net-predict")
          .Num("connections", conns)
          .Num("max_batch", static_cast<double>(policy.max_batch))
          .Num("readers", readers)
          .Num("qps", res.qps)
          .Num("p50_us", res.p50_us)
          .Num("p99_us", res.p99_us)
          .Num("coalesce_mean", res.coalesce_mean)
          .Num("checksum", res.checksum);
    }

    if (policy.max_batch > 1) {
      Banner("Top-K over the wire — version-keyed cache on the same daemon "
             "(cold = fresh version, hot = cache hits)");
      PrintRow({"row", "cold_us", "hot_qps", "hot_p50us", "hot_p99us", "hits"});
      const TopKResultRow res =
          RunTopKLoad(path, *server, std::max<size_t>(64, ops_total / 4));
      PrintRow({"topk_k64", Fmt(res.cold_us, 1), Fmt(res.hot_qps, 0),
                Fmt(res.hot_p50_us, 1), Fmt(res.hot_p99_us, 1),
                Fmt(res.hit_rate, 3)});
      json.Row()
          .Str("config", "topk_k64")
          .Str("base_config", "topk")
          .Str("kernel", "net-topk")
          .Num("readers", readers)
          .Num("cold_us", res.cold_us)
          .Num("hot_qps", res.hot_qps)
          .Num("hot_p50_us", res.hot_p50_us)
          .Num("hot_p99_us", res.hot_p99_us)
          .Num("cache_hit_rate", res.hit_rate);
    }
    server->Stop();
  }

  json.WriteIfRequested(argc, argv);
  return 0;
}
