// Ablation A2 (DESIGN.md): the lazy global-scale ℓ2 trick (Sec. 5.1). An
// eager implementation decays every one of the k sketch cells on every
// update — O(k + s·nnz) — while the lazy implementation folds the decay into
// a scalar — O(s·nnz). This bench measures both the update-time gap and the
// numerical agreement of the resulting weight estimates.

#include <chrono>

#include "bench/bench_common.h"
#include "hash/tabulation.h"
#include "util/math.h"

namespace wmsketch::bench {
namespace {

// A deliberately-eager WM-Sketch: identical math, no scale trick.
class EagerWmSketch {
 public:
  EagerWmSketch(uint32_t width, uint32_t depth, const LearnerOptions& opts)
      : width_(width), depth_(depth), opts_(opts),
        sqrt_depth_(std::sqrt(static_cast<double>(depth))) {
    SplitMix64 sm(opts.seed);
    for (uint32_t j = 0; j < depth; ++j) rows_.emplace_back(sm.Next(), width);
    table_.assign(static_cast<size_t>(width) * depth, 0.0f);
  }

  double Update(const SparseVector& x, int8_t y) {
    double tau = 0.0;
    for (size_t i = 0; i < x.nnz(); ++i) {
      double per = 0.0;
      for (uint32_t j = 0; j < depth_; ++j) {
        uint32_t b;
        float s;
        rows_[j].BucketAndSign(x.index(i), &b, &s);
        per += static_cast<double>(s) * table_[j * width_ + b];
      }
      tau += per * x.value(i);
    }
    tau /= sqrt_depth_;
    ++t_;
    const double eta = opts_.rate.Rate(t_);
    const double g = opts_.loss->Derivative(y * tau);
    // Eager decay: touch every cell.
    const float decay = static_cast<float>(1.0 - eta * opts_.lambda);
    for (float& cell : table_) cell *= decay;
    const double step = eta * y * g / sqrt_depth_;
    for (size_t i = 0; i < x.nnz(); ++i) {
      for (uint32_t j = 0; j < depth_; ++j) {
        uint32_t b;
        float s;
        rows_[j].BucketAndSign(x.index(i), &b, &s);
        table_[j * width_ + b] -= static_cast<float>(step * s * x.value(i));
      }
    }
    return tau;
  }

  float WeightEstimate(uint32_t feature) const {
    float est[64];
    for (uint32_t j = 0; j < depth_; ++j) {
      uint32_t b;
      float s;
      rows_[j].BucketAndSign(feature, &b, &s);
      est[j] = s * table_[j * width_ + b];
    }
    return static_cast<float>(sqrt_depth_) * MedianInPlace(est, depth_);
  }

 private:
  uint32_t width_;
  uint32_t depth_;
  LearnerOptions opts_;
  double sqrt_depth_;
  std::vector<SignedBucketHash> rows_;
  std::vector<float> table_;
  uint64_t t_ = 0;
};

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(30000);
  const LearnerOptions opts = PaperOptions(1e-4, 97);

  Banner("Ablation A2 — lazy vs eager l2 decay (rcv1, lambda=1e-4)");
  PrintRow({"sketch size", "lazy us/upd", "eager us/upd", "speedup", "max|diff|"});
  for (const uint32_t width : {1024u, 4096u, 16384u}) {
    const uint32_t depth = 4;
    Learner lazy = BuildOrDie(PaperBuilder(1e-4, 97)
                                  .SetMethod(Method::kWmSketch)
                                  .SetWidth(width)
                                  .SetDepth(depth)
                                  .SetHeapCapacity(0)
                                  .Build());
    EagerWmSketch eager(width, depth, opts);

    SyntheticClassificationGen gen(profile, 98);
    double lazy_us = 0.0, eager_us = 0.0;
    for (int i = 0; i < examples; ++i) {
      const Example ex = gen.Next();
      auto t0 = std::chrono::steady_clock::now();
      lazy.Update(ex);
      auto t1 = std::chrono::steady_clock::now();
      eager.Update(ex.x, ex.y);
      auto t2 = std::chrono::steady_clock::now();
      lazy_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
      eager_us += std::chrono::duration<double, std::micro>(t2 - t1).count();
    }
    lazy_us /= examples;
    eager_us /= examples;

    // Numerical agreement on the most frequent features (frozen snapshot).
    const LearnerSnapshot lazy_snap = lazy.Snapshot();
    float max_diff = 0.0f;
    for (uint32_t f = 0; f < 2000; ++f) {
      max_diff = std::max(max_diff,
                          std::fabs(lazy_snap.Estimate(f) - eager.WeightEstimate(f)));
    }
    PrintRow({std::to_string(width) + "x" + std::to_string(depth), Fmt(lazy_us, 2),
              Fmt(eager_us, 2), Fmt(eager_us / lazy_us, 1) + "x", Fmt(max_diff, 6)});
  }
  return 0;
}
