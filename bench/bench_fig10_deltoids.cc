// Figure 10: recall of IP addresses whose |log occurrence ratio| between two
// concurrent packet streams exceeds a threshold, at a 32 KB budget, for:
// unconstrained LR, simple truncation, probabilistic truncation, paired
// Count-Min (equal budget), paired Count-Min with 8x the budget, and the
// AWM-Sketch. Each method retrieves its top-2048 candidates.
//
// Expected shape (paper): AWM ≈ LR near recall 1 at high thresholds; paired
// CM at equal budget recovers ~4x fewer deltoids; even CMx8 stays well below
// the classifier-based methods.

#include <unordered_set>

#include "apps/deltoid.h"
#include "bench/bench_common.h"
#include "datagen/packet_gen.h"
#include "metrics/recall.h"

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const int events = ScaledCount(3000000);
  const uint32_t universe = 1u << 17;  // 131K addresses (paper trace: 126K)
  constexpr size_t kTopK = 2048;

  PacketTraceGenerator gen(universe, /*num_deltoids=*/512, 31337);

  const LearnerOptions opts = PaperOptions(1e-6, 17);
  DenseLinearModel lr(universe, opts, kTopK);
  Learner awm = BuildOrDie(
      PaperBuilder(1e-6, 17).SetMethod(Method::kAwmSketch).SetBudgetBytes(KiB(32)).Build());
  RelativeDeltoidDetector awm_det(&awm);
  Learner trun = BuildOrDie(PaperBuilder(1e-6, 17)
                                .SetMethod(Method::kSimpleTruncation)
                                .SetBudgetBytes(KiB(32))
                                .Build());
  RelativeDeltoidDetector trun_det(&trun);
  Learner ptrun = BuildOrDie(PaperBuilder(1e-6, 17)
                                 .SetMethod(Method::kProbabilisticTruncation)
                                 .SetBudgetBytes(KiB(32))
                                 .Build());
  RelativeDeltoidDetector ptrun_det(&ptrun);
  // Paired CM at 32 KB total: two sketches of 16 KB → width 2048, depth 2.
  PairedCmRatioEstimator cm(2048, 2, 19);
  // CMx8: 256 KB total → width 8192, depth 4.
  PairedCmRatioEstimator cm8(8192, 4, 23);

  std::vector<uint64_t> out_counts(universe, 0), in_counts(universe, 0);
  for (int i = 0; i < events; ++i) {
    const PacketEvent e = gen.Next();
    // The dense reference is not a budgeted Method; it observes directly.
    lr.Update(SparseVector::OneHot(e.ip), e.outbound ? 1 : -1);
    awm_det.Observe(e.ip, e.outbound);
    trun_det.Observe(e.ip, e.outbound);
    ptrun_det.Observe(e.ip, e.outbound);
    cm.Observe(e.ip, e.outbound);
    cm8.Observe(e.ip, e.outbound);
    ++(e.outbound ? out_counts : in_counts)[e.ip];
  }

  // Ground truth: exact log occurrence ratios for addresses seen enough on
  // either side that a ratio is meaningful.
  std::vector<std::pair<uint32_t, double>> truth;
  for (uint32_t ip = 0; ip < universe; ++ip) {
    if (out_counts[ip] + in_counts[ip] < 16) continue;
    truth.emplace_back(ip, std::log((static_cast<double>(out_counts[ip]) + 0.5) /
                                    (static_cast<double>(in_counts[ip]) + 0.5)));
  }

  const auto retrieved_set = [](const std::vector<FeatureWeight>& top) {
    std::unordered_set<uint32_t> s;
    for (const FeatureWeight& fw : top) s.insert(fw.feature);
    return s;
  };
  const std::vector<double> thresholds = {5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0};

  Banner("Fig 10 — deltoid recall vs |log ratio| threshold (32KB, top-2048)");
  std::vector<std::string> header = {"method"};
  for (const double t : thresholds) header.push_back(Fmt(t, 1));
  PrintRow(header);

  const auto print_curve = [&](const std::string& name,
                               const std::unordered_set<uint32_t>& retrieved) {
    std::vector<std::string> row = {name};
    for (const RecallPoint& p : RecallAboveThresholds(retrieved, truth, thresholds)) {
      row.push_back(Fmt(p.recall, 3));
    }
    PrintRow(row);
  };
  print_curve("lr", retrieved_set(lr.TopK(kTopK)));
  print_curve("trun", retrieved_set(trun_det.TopDeltoids(kTopK)));
  print_curve("ptrun", retrieved_set(ptrun_det.TopDeltoids(kTopK)));
  print_curve("cm", retrieved_set(cm.TopDeltoids(kTopK, universe)));
  print_curve("cmx8", retrieved_set(cm8.TopDeltoids(kTopK, universe)));
  print_curve("awm", retrieved_set(awm_det.TopDeltoids(kTopK)));

  std::printf("\n(relevant counts by threshold:");
  for (const RecallPoint& p : RecallAboveThresholds({}, truth, thresholds)) {
    std::printf(" %zu", p.relevant);
  }
  std::printf(")\n");
  return 0;
}
