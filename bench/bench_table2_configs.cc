// Table 2: the (heap, width, depth) configuration with the lowest ℓ2
// recovery error for the WM- and AWM-Sketches at each budget, found by a
// grid search over the planner's configuration space on the RCV1 profile.
//
// Expected shape (paper): the AWM optimum allocates half the budget to the
// active set with a depth-1 sketch at every budget; the WM optimum keeps
// width at 128–256 and grows *depth* with the budget.

#include "bench/bench_common.h"

namespace wmsketch::bench {
namespace {

double EvalConfig(const BudgetConfig& cfg, const ClassificationProfile& profile,
                  int examples, size_t k) {
  Learner model = BuildOrDie(PaperBuilder(1e-6, 55).SetConfig(cfg).Build());
  DenseLinearModel reference(profile.dimension, PaperOptions(1e-6, 55));
  SyntheticClassificationGen gen(profile, 56);
  std::vector<Example> chunk;
  for (int consumed = 0; consumed < examples;) {
    const int n = std::min(512, examples - consumed);
    chunk.clear();
    for (int i = 0; i < n; ++i) chunk.push_back(gen.Next());
    consumed += n;
    model.UpdateBatch(chunk);
    for (const Example& ex : chunk) reference.Update(ex.x, ex.y);
  }
  return RelErrTopK(model.Snapshot(k).top_k(), reference.Weights(), k);
}

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(30000);
  const size_t k = 128;

  Banner("Table 2 — best configuration per budget (rcv1, RelErr@128 grid search)");
  PrintRow({"budget", "method", "|S|", "width", "depth", "RelErr"});
  for (const size_t kb : {2u, 4u, 8u, 16u, 32u}) {
    for (const Method method : {Method::kWmSketch, Method::kAwmSketch}) {
      BudgetConfig best;
      double best_err = 1e18;
      for (const BudgetConfig& cfg : EnumerateConfigs(method, KiB(kb))) {
        const double err = EvalConfig(cfg, profile, examples, k);
        if (err < best_err) {
          best_err = err;
          best = cfg;
        }
      }
      PrintRow({std::to_string(kb) + "KB", MethodName(method),
                std::to_string(best.heap_capacity), std::to_string(best.width),
                std::to_string(best.depth), Fmt(best_err)});
    }
  }
  return 0;
}
