// Figure 6: online (progressive-validation) classification error rate under
// 2–32 KB budgets for all methods, plus the memory-unconstrained logistic
// regression reference, on the three dataset profiles.
//
// Expected shape (paper): AWM ≤ Hash < heavy-hitter methods at small
// budgets; every method approaches the unconstrained LR as the budget grows;
// SS is inconsistent across datasets (good when frequent ⇒ predictive,
// poor otherwise).

#include "bench/bench_common.h"

namespace wmsketch::bench {
namespace {

void RunDataset(const ClassificationProfile& profile, double lambda, int examples,
                BenchJson& json) {
  Banner("Fig 6 — online error rate (" + profile.name + ", lambda=" + Fmt(lambda, 7) + ")");
  const std::vector<Method> methods = AllMethods();
  std::vector<std::string> header = {"budget"};
  for (const Method m : methods) header.push_back(MethodName(m));
  header.push_back("lr");
  PrintRow(header);
  for (const size_t kb : {2u, 4u, 8u, 16u, 32u}) {
    const SweepOutput out =
        RunMethodSweep(profile, methods, KiB(kb), /*k=*/128, lambda, 17, examples);
    std::vector<std::string> row = {std::to_string(kb) + "KB"};
    for (const MethodRun& run : out.runs) {
      row.push_back(Fmt(run.error_rate));
      json.Row()
          .Str("dataset", profile.name)
          .Num("budget_kb", static_cast<double>(kb))
          .Str("method", run.name)
          .Num("error_rate", run.error_rate)
          .Num("lr_error_rate", out.lr_error_rate);
    }
    row.push_back(Fmt(out.lr_error_rate));
    PrintRow(row);
  }
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  BenchJson json("fig6_error_rate");
  RunDataset(ClassificationProfile::Rcv1Like(), 1e-6, ScaledCount(80000), json);
  RunDataset(ClassificationProfile::UrlLike(), 1e-6, ScaledCount(60000), json);
  RunDataset(ClassificationProfile::KddaLike(), 1e-6, ScaledCount(60000), json);
  json.WriteIfRequested(argc, argv);
  return 0;
}
