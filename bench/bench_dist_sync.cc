// Distributed sync payload sizes: per-sync bytes of a dirty-page delta as a
// function of how much of the table the window dirtied, against the
// full-snapshot fallback cost. The claim under test: delta bytes scale with
// dirty pages, so a lightly-updated worker ships a small fraction of its
// table, while the fallback pays the full model every time.
//
//   $ ./bench_dist_sync [--json BENCH_dist_sync.json]
//
// Columns: fraction of the stream ingested inside one delta window, pages
// shipped / total, delta payload bytes, full snapshot bytes, and the ratio.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/delta_io.h"

namespace wmsketch::bench {
namespace {

Result<Learner> Build() {
  return LearnerBuilder()
      .SetMethod(Method::kAwmSketch)
      .SetWidth(65536)
      .SetDepth(1)
      .SetHeapCapacity(512)
      .SetLambda(1e-6)
      .SetLearningRate(LearningRate::InverseSqrt(0.1))
      .SetSeed(42)
      .Build();
}

int Run(int argc, char** argv) {
  Banner("dist sync: delta bytes vs dirty pages (AWM, 64K-cell table)");
  PrintRow({"window_examples", "pages", "delta_B", "full_B", "delta/full"});

  BenchJson json("dist_sync");
  const int kWindows[] = {0, 1, 10, 100, 1000, 10000, 40000};

  for (const int window_examples : kWindows) {
    Result<Learner> built = Build();
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
      return 1;
    }
    Learner learner = std::move(built).value();

    // Warm the model outside the window so the delta measures only what the
    // window itself dirtied — the steady-state sync cost, not cold start.
    SyntheticClassificationGen gen(ClassificationProfile::Rcv1Like(), 7);
    std::vector<Example> stream;
    const int warm = ScaledCount(20000);
    stream.reserve(static_cast<size_t>(warm));
    for (int i = 0; i < warm; ++i) stream.push_back(gen.Next());
    learner.UpdateBatch(stream);

    Result<uint64_t> window = BeginDeltaWindow(learner.method(), learner.impl());
    if (!window.ok()) {
      std::fprintf(stderr, "window failed: %s\n", window.status().ToString().c_str());
      return 1;
    }
    stream.clear();
    for (int i = 0; i < window_examples; ++i) stream.push_back(gen.Next());
    if (!stream.empty()) learner.UpdateBatch(stream);

    std::ostringstream delta(std::ios::binary);
    DeltaStats stats;
    const Status st =
        SaveDelta(learner.method(), learner.impl(), window.value(), delta, &stats);
    if (!st.ok()) {
      std::fprintf(stderr, "delta failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::ostringstream full(std::ios::binary);
    if (!SaveClassifier(learner.method(), learner.impl(), full).ok()) return 1;

    const double delta_bytes = static_cast<double>(delta.str().size());
    const double full_bytes = static_cast<double>(full.str().size());
    const std::string pages = std::to_string(stats.pages_shipped) + "/" +
                              std::to_string(stats.pages_total);
    PrintRow({std::to_string(window_examples), pages, Fmt(delta_bytes, 0),
              Fmt(full_bytes, 0), Fmt(delta_bytes / full_bytes, 3)});
    json.Row()
        .Num("window_examples", window_examples)
        .Num("pages_shipped", static_cast<double>(stats.pages_shipped))
        .Num("pages_total", static_cast<double>(stats.pages_total))
        .Num("delta_bytes", delta_bytes)
        .Num("full_bytes", full_bytes)
        .Num("delta_to_full_ratio", delta_bytes / full_bytes);
  }

  json.WriteIfRequested(argc, argv);
  return 0;
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) { return wmsketch::bench::Run(argc, argv); }
