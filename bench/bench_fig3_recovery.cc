// Figure 3: relative ℓ2 error of estimated top-K weights vs. the true top-K
// of the uncompressed model, for K in {8..128}, under an 8 KB budget, on the
// three benchmark-dataset profiles. Also prints the §7.2 summary ratios
// ("AWM is Nx closer to optimal than SS / Trun" at K=128).
//
// Expected shape (paper): AWM lowest everywhere; SS competitive on RCV1 but
// beaten by PTrun on URL; Hash worst; all curves ≥ 1.

#include <map>

#include "bench/bench_common.h"

namespace wmsketch::bench {
namespace {

void RunDataset(const ClassificationProfile& profile, double lambda, int examples,
                BenchJson& json) {
  Banner("Fig 3 — " + profile.name + " (8KB, lambda=" + Fmt(lambda, 7) + ")");
  const std::vector<Method> methods = {
      Method::kSimpleTruncation, Method::kProbabilisticTruncation,
      Method::kSpaceSavingFrequent, Method::kCountMinFrequent,
      Method::kFeatureHashing,     Method::kWmSketch,
      Method::kAwmSketch};

  // Train once; evaluate RelErr at multiple K from one snapshot per model.
  // (Re-running per K would triple the runtime for identical models.)
  std::vector<Learner> models;
  for (const Method m : methods) {
    models.push_back(
        BuildOrDie(PaperBuilder(lambda, 1234).SetMethod(m).SetBudgetBytes(KiB(8)).Build()));
  }
  DenseLinearModel reference(profile.dimension, PaperOptions(lambda, 1234));
  SyntheticClassificationGen gen(profile, 42);
  std::vector<Example> chunk;
  for (int consumed = 0; consumed < examples;) {
    const int n = std::min(512, examples - consumed);
    chunk.clear();
    for (int i = 0; i < n; ++i) chunk.push_back(gen.Next());
    consumed += n;
    for (Learner& m : models) m.UpdateBatch(chunk);
    for (const Example& ex : chunk) reference.Update(ex.x, ex.y);
  }
  const std::vector<float> w_star = reference.Weights();

  std::vector<LearnerSnapshot> snaps;
  std::vector<std::string> header = {"K"};
  for (const Learner& m : models) {
    snaps.push_back(m.Snapshot(128));
    header.push_back(m.Name());
  }
  PrintRow(header);
  std::map<std::string, double> final_err;
  for (const size_t k : {8u, 16u, 32u, 64u, 96u, 128u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const LearnerSnapshot& snap : snaps) {
      std::vector<FeatureWeight> top = snap.TopK(k);
      if (top.empty()) top = snap.ScanTopK(k, profile.dimension);
      const double err = RelErrTopK(top, w_star, k);
      row.push_back(Fmt(err));
      final_err[snap.name()] = err;
      json.Row()
          .Str("dataset", profile.name)
          .Num("k", static_cast<double>(k))
          .Str("method", snap.name())
          .Num("rel_err", err);
    }
    PrintRow(row);
  }

  // §7.2 summary: excess error (RelErr − 1) ratios at K = 128.
  const double awm_excess = final_err["awm"] - 1.0;
  if (awm_excess > 0.0) {
    std::printf("excess-error ratio vs AWM at K=128:  SS %.1fx  Trun %.1fx  Hash %.1fx\n",
                (final_err["ss"] - 1.0) / awm_excess,
                (final_err["trun"] - 1.0) / awm_excess,
                (final_err["hash"] - 1.0) / awm_excess);
  }
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  BenchJson json("fig3_recovery");
  // Paper's λ per dataset (Fig. 3 captions): RCV1 1e-6, URL 1e-5, KDDA 1e-5.
  RunDataset(ClassificationProfile::Rcv1Like(), 1e-6, ScaledCount(120000), json);
  RunDataset(ClassificationProfile::UrlLike(), 1e-5, ScaledCount(80000), json);
  RunDataset(ClassificationProfile::KddaLike(), 1e-5, ScaledCount(80000), json);
  json.WriteIfRequested(argc, argv);
  return 0;
}
