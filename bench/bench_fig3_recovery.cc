// Figure 3: relative ℓ2 error of estimated top-K weights vs. the true top-K
// of the uncompressed model, for K in {8..128}, under an 8 KB budget, on the
// three benchmark-dataset profiles. Also prints the §7.2 summary ratios
// ("AWM is Nx closer to optimal than SS / Trun" at K=128).
//
// Expected shape (paper): AWM lowest everywhere; SS competitive on RCV1 but
// beaten by PTrun on URL; Hash worst; all curves ≥ 1.

#include <map>

#include "bench/bench_common.h"

namespace wmsketch::bench {
namespace {

void RunDataset(const ClassificationProfile& profile, double lambda, int examples) {
  Banner("Fig 3 — " + profile.name + " (8KB, lambda=" + Fmt(lambda, 7) + ")");
  const std::vector<Method> methods = {
      Method::kSimpleTruncation, Method::kProbabilisticTruncation,
      Method::kSpaceSavingFrequent, Method::kCountMinFrequent,
      Method::kFeatureHashing,     Method::kWmSketch,
      Method::kAwmSketch};

  // Train once; evaluate RelErr at multiple K from the same final models.
  // (Re-running per K would triple the runtime for identical models.)
  const LearnerOptions opts = PaperOptions(lambda, 1234);
  std::vector<std::unique_ptr<BudgetedClassifier>> models;
  for (const Method m : methods) {
    models.push_back(MakeClassifier(DefaultConfig(m, KiB(8)), opts));
  }
  DenseLinearModel reference(profile.dimension, opts);
  SyntheticClassificationGen gen(profile, 42);
  for (int i = 0; i < examples; ++i) {
    const Example ex = gen.Next();
    for (auto& m : models) m->Update(ex.x, ex.y);
    reference.Update(ex.x, ex.y);
  }
  const std::vector<float> w_star = reference.Weights();

  std::vector<std::string> header = {"K"};
  for (const auto& m : models) header.push_back(m->Name());
  PrintRow(header);
  std::map<std::string, double> final_err;
  for (const size_t k : {8u, 16u, 32u, 64u, 96u, 128u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const auto& m : models) {
      std::vector<FeatureWeight> top = m->TopK(k);
      if (top.empty()) top = ScanTopK(*m, k, profile.dimension);
      const double err = RelErrTopK(top, w_star, k);
      row.push_back(Fmt(err));
      final_err[m->Name()] = err;
    }
    PrintRow(row);
  }

  // §7.2 summary: excess error (RelErr − 1) ratios at K = 128.
  const double awm_excess = final_err["awm"] - 1.0;
  if (awm_excess > 0.0) {
    std::printf("excess-error ratio vs AWM at K=128:  SS %.1fx  Trun %.1fx  Hash %.1fx\n",
                (final_err["ss"] - 1.0) / awm_excess,
                (final_err["trun"] - 1.0) / awm_excess,
                (final_err["hash"] - 1.0) / awm_excess);
  }
}

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  // Paper's λ per dataset (Fig. 3 captions): RCV1 1e-6, URL 1e-5, KDDA 1e-5.
  RunDataset(ClassificationProfile::Rcv1Like(), 1e-6, ScaledCount(120000));
  RunDataset(ClassificationProfile::UrlLike(), 1e-5, ScaledCount(80000));
  RunDataset(ClassificationProfile::KddaLike(), 1e-5, ScaledCount(80000));
  return 0;
}
