// Mixed read/write serving benchmark: R reader threads serve batched
// predictions and point estimates from published snapshots (wait-free
// ServingHandles) while one writer thread trains the same learner,
// publishing every ServeEvery updates.
//
//   ./bench_serving [--json BENCH_serving.json] [--readers N]
//                   [--libsvm data.txt[.gz]] [--profile profile.json]
//
// One row per (config, reader count), reader counts {0, N}: the 0-reader
// row is the writer's no-contention ingest rate (the baseline for the
// "readers must not stall the writer" criterion on multi-core machines),
// the N-reader row reports aggregate reader throughput plus the observed
// snapshot staleness in updates (bounded by ServeEvery on a dedicated
// writer core; scheduling can stretch the observed mean on oversubscribed
// machines).
//
// A second, single-threaded "publish cost" section measures what the
// copy-on-write paged storage buys a high-cadence serving tier: for large
// tables at small ServeEvery(k) it times explicit snapshot publications and
// reports bytes physically copied per publish (dirtied pages only) against
// the full-table bytes the pre-paged implementation copied every time,
// plus per-snapshot resident bytes. Rows carry kernel tag "publish";
// publish_gain (= full_table_bytes / publish_bytes) is the machine-
// independent gate metric, publish_us the latency one.
//
// A third "frozen reads" section times single-threaded batched predicts and
// point estimates against a published snapshot with the kernel paths toggled
// — the direct measurement of the paged serving gather kernels. These rows
// repeat for every stream ResolveBenchStreams yields (--libsvm replaces the
// synthetic stream; --profile adds a deterministic sparsity-profile replay).
//
// Stream lengths scale with WMS_BENCH_SCALE like every other bench.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "bench/bench_common.h"
#include "engine/serving.h"
#include "util/simd.h"

namespace wmsketch::bench {
namespace {

constexpr uint64_t kServeEvery = 4096;
constexpr size_t kWriteChunk = 512;
constexpr size_t kReadChunk = 256;

struct ServingConfig {
  const char* label;
  Method method;
  uint32_t width;
  uint32_t depth;
  size_t heap;
};

constexpr ServingConfig kConfigs[] = {
    {"wm_w256_d3", Method::kWmSketch, 256, 3, 128},
    {"awm_w256_s256", Method::kAwmSketch, 256, 1, 256},
    {"hash_w4096", Method::kFeatureHashing, 4096, 0, 0},
};

// Cache-line aligned: adjacent readers' counters must not false-share — on
// multi-core machines the ping-pong would depress exactly the aggregate
// reader throughput this bench exists to measure.
struct alignas(64) ReaderStats {
  uint64_t predicts = 0;
  uint64_t estimates = 0;
  double staleness_sum = 0.0;
  uint64_t staleness_max = 0;
  uint64_t staleness_samples = 0;
  bool versions_monotone = true;
  double checksum = 0.0;
  /// Per-op latencies in microseconds (batched-call time / ops in the call),
  /// one sample per batched call — aggregate throughput alone hides the tail
  /// the network bench compares against.
  std::vector<double> predict_us;
  std::vector<double> estimate_us;
};

struct RunResult {
  double updates_per_sec = 0.0;
  double predicts_per_sec = 0.0;
  double estimates_per_sec = 0.0;
  double staleness_mean = 0.0;
  double staleness_max = 0.0;
  bool monotone = true;
  double checksum = 0.0;
  double publish_bytes_mean = 0.0;   // bytes copied per publication (dirty pages)
  double snapshot_resident_bytes = 0.0;
  double predict_p50_us = 0.0;   // per-op latency percentiles across readers
  double predict_p99_us = 0.0;
  double estimate_p50_us = 0.0;
  double estimate_p99_us = 0.0;
};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void ReaderLoop(ServingHandle& handle, std::span<const Example> queries,
                uint32_t dimension, uint64_t seed, const std::atomic<bool>& start,
                const std::atomic<bool>& done, const std::atomic<uint64_t>& writer_steps,
                ReaderStats& out) {
  // Tiny WMS_BENCH_SCALE streams can be shorter than the preferred chunk;
  // clamp the window (and keep the rotation modulus >= 1) instead of
  // reading past the query span.
  const size_t chunk = std::min(kReadChunk, queries.size());
  const size_t rotate = std::max<size_t>(1, queries.size() - chunk + 1);
  std::vector<double> margins(chunk);
  std::vector<uint32_t> keys(chunk);
  std::vector<float> estimates(chunk);
  SplitMix64 ids(seed);
  uint64_t last_version = 0;
  size_t at = 0;
  const double per_op = 1.0 / static_cast<double>(chunk);
  // Pre-size the sample buffers so the measured loop almost never pays a
  // reallocation inside a timed window.
  out.predict_us.reserve(1 << 16);
  out.estimate_us.reserve(1 << 16);
  while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
  while (!done.load(std::memory_order_acquire)) {
    // One batched predict chunk from a rotating window of the query stream.
    const auto p0 = std::chrono::steady_clock::now();
    handle.PredictBatch(std::span<const Example>(queries.data() + at, chunk),
                        margins.data());
    const auto p1 = std::chrono::steady_clock::now();
    out.predict_us.push_back(Seconds(p0, p1) * 1e6 * per_op);
    at = (at + chunk) % rotate;
    out.predicts += chunk;
    out.checksum += margins[0];

    const uint64_t version = handle.version();
    if (version < last_version) out.versions_monotone = false;
    last_version = version;
    const uint64_t writer_now = writer_steps.load(std::memory_order_relaxed);
    const uint64_t seen = handle.steps();
    const uint64_t lag = writer_now > seen ? writer_now - seen : 0;
    out.staleness_sum += static_cast<double>(lag);
    out.staleness_max = std::max(out.staleness_max, lag);
    ++out.staleness_samples;

    // One batched point-estimate chunk over random feature ids.
    for (size_t i = 0; i < chunk; ++i) {
      keys[i] = static_cast<uint32_t>(ids.Next() % dimension);
    }
    const auto e0 = std::chrono::steady_clock::now();
    handle.EstimateBatch(keys, estimates.data());
    const auto e1 = std::chrono::steady_clock::now();
    out.estimate_us.push_back(Seconds(e0, e1) * 1e6 * per_op);
    out.estimates += chunk;
    out.checksum += static_cast<double>(estimates[0]);
  }
}

RunResult RunMixed(const ServingConfig& c, int readers,
                   const std::vector<Example>& stream, uint32_t dimension) {
  LearnerBuilder b =
      PaperBuilder(1e-6, 77).SetMethod(c.method).SetWidth(c.width).ServeEvery(kServeEvery);
  if (c.depth > 0) b.SetDepth(c.depth);
  if (c.heap > 0) b.SetHeapCapacity(c.heap);
  Learner model = BuildOrDie(b.Build());

  // Warm-up before the measured window (and before the initial publish, so
  // readers never serve an all-zero model).
  const size_t warm = std::min<size_t>(2 * kWriteChunk, stream.size() / 4);
  model.UpdateBatch(std::span<const Example>(stream.data(), warm));

  // One handle is always acquired — idle in the 0-reader run — so serving
  // (and its every-K snapshot capture) is active in both rows: the r0 row
  // is the *publishing* writer's baseline, and the reader rows then isolate
  // reader contention rather than conflating it with publication cost.
  std::vector<ServingHandle> handles;
  for (int r = 0; r < std::max(readers, 1); ++r) {
    Result<ServingHandle> h = model.AcquireServingHandle();
    if (!h.ok()) {
      std::fprintf(stderr, "serving handle: %s\n", h.status().ToString().c_str());
      std::exit(1);
    }
    handles.push_back(std::move(h).value());
  }

  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> writer_steps{model.steps()};
  const std::span<const Example> queries(stream.data(),
                                         std::min<size_t>(stream.size(), 20000));
  std::vector<ReaderStats> stats(static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      ReaderLoop(handles[static_cast<size_t>(r)], queries, dimension,
                 1000u + static_cast<uint64_t>(r), start, done, writer_steps,
                 stats[static_cast<size_t>(r)]);
    });
  }

  const TablePublishStats pub0 = model.impl().publish_stats();
  start.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t at = warm; at < stream.size(); at += kWriteChunk) {
    const size_t n = std::min(kWriteChunk, stream.size() - at);
    model.UpdateBatch(std::span<const Example>(stream.data() + at, n));
    writer_steps.store(model.steps(), std::memory_order_relaxed);
  }
  const auto t1 = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const TablePublishStats pub1 = model.impl().publish_stats();

  const double elapsed = Seconds(t0, t1);
  RunResult out;
  out.updates_per_sec = static_cast<double>(stream.size() - warm) / elapsed;
  uint64_t predicts = 0, estimates = 0, samples = 0, stale_max = 0;
  double stale_sum = 0.0;
  std::vector<double> predict_us, estimate_us;
  for (const ReaderStats& s : stats) {
    predicts += s.predicts;
    estimates += s.estimates;
    samples += s.staleness_samples;
    stale_sum += s.staleness_sum;
    stale_max = std::max(stale_max, s.staleness_max);
    out.monotone = out.monotone && s.versions_monotone;
    out.checksum += s.checksum;
    predict_us.insert(predict_us.end(), s.predict_us.begin(), s.predict_us.end());
    estimate_us.insert(estimate_us.end(), s.estimate_us.begin(), s.estimate_us.end());
  }
  out.predict_p50_us = Percentile(predict_us, 50.0);
  out.predict_p99_us = Percentile(predict_us, 99.0);
  out.estimate_p50_us = Percentile(estimate_us, 50.0);
  out.estimate_p99_us = Percentile(estimate_us, 99.0);
  out.predicts_per_sec = static_cast<double>(predicts) / elapsed;
  out.estimates_per_sec = static_cast<double>(estimates) / elapsed;
  out.staleness_mean =
      samples == 0 ? 0.0 : stale_sum / static_cast<double>(samples);
  out.staleness_max = static_cast<double>(stale_max);
  const uint64_t publishes = pub1.publishes - pub0.publishes;
  out.publish_bytes_mean =
      publishes == 0 ? 0.0
                     : static_cast<double>(pub1.copied_bytes - pub0.copied_bytes) /
                           static_cast<double>(publishes);
  const auto snap = CaptureServingSnapshot(model.impl(), Learner::kDefaultSnapshotTopK);
  out.snapshot_resident_bytes = static_cast<double>(snap->resident_bytes);
  return out;
}

// ------------------------------------------------------------ publish cost

struct PublishCostConfig {
  const char* label;
  Method method;
  uint32_t width;
  uint32_t depth;  // 0 = method without a depth knob
  size_t heap;
  uint64_t serve_every;  // the k the row models (updates between publishes)
};

// Large tables + small k: the high-cadence regime the paged storage exists
// for. The k64 row shows the gain eroding as more pages dirty per interval.
constexpr PublishCostConfig kPublishConfigs[] = {
    {"wm_w65536_d3_k2", Method::kWmSketch, 65536, 3, 128, 2},
    {"wm_w65536_d3_k64", Method::kWmSketch, 65536, 3, 128, 64},
    {"hash_w262144_k8", Method::kFeatureHashing, 262144, 0, 0, 8},
};

struct PublishCostResult {
  double publish_bytes = 0.0;          // mean bytes copied per publish
  double publish_us = 0.0;             // mean publish latency
  double full_table_bytes = 0.0;       // what the pre-paged capture copied
  double publish_gain = 0.0;           // full_table_bytes / publish_bytes
  double snapshot_resident_bytes = 0.0;
  uint64_t publishes = 0;
};

PublishCostResult RunPublishCost(const PublishCostConfig& c,
                                 const std::vector<Example>& stream) {
  LearnerBuilder b = PaperBuilder(1e-6, 77).SetMethod(c.method).SetWidth(c.width);
  if (c.depth > 0) b.SetDepth(c.depth);
  if (c.heap > 0) b.SetHeapCapacity(c.heap);
  // ServeEvery(0): the loop paces updates and publishes explicitly so each
  // publication can be timed on its own.
  Learner model = BuildOrDie(b.Build());

  const size_t warm = std::min<size_t>(4096, stream.size() / 4);
  model.UpdateBatch(std::span<const Example>(stream.data(), warm));

  // The first acquisition publishes the initial snapshot — the O(budget)
  // full copy every snapshot used to pay. Not part of the measured window.
  Result<ServingHandle> handle = model.AcquireServingHandle();
  if (!handle.ok()) {
    std::fprintf(stderr, "serving handle: %s\n", handle.status().ToString().c_str());
    std::exit(1);
  }

  const uint64_t publishes = static_cast<uint64_t>(ScaledCount(200));
  const TablePublishStats pub0 = model.impl().publish_stats();
  double publish_seconds = 0.0;
  size_t at = warm;
  for (uint64_t p = 0; p < publishes; ++p) {
    for (uint64_t u = 0; u < c.serve_every; ++u) {
      model.Update(stream[at]);
      at = (at + 1) % stream.size();
    }
    const auto t0 = std::chrono::steady_clock::now();
    model.PublishServingSnapshot();
    const auto t1 = std::chrono::steady_clock::now();
    publish_seconds += Seconds(t0, t1);
  }
  const TablePublishStats pub1 = model.impl().publish_stats();

  PublishCostResult out;
  out.publishes = pub1.publishes - pub0.publishes;
  const size_t cells =
      static_cast<size_t>(c.width) * (c.depth > 0 ? c.depth : 1);
  out.full_table_bytes = static_cast<double>(cells * sizeof(float));
  out.publish_bytes = static_cast<double>(pub1.copied_bytes - pub0.copied_bytes) /
                      static_cast<double>(out.publishes);
  out.publish_us = publish_seconds / static_cast<double>(out.publishes) * 1e6;
  out.publish_gain =
      out.publish_bytes > 0.0 ? out.full_table_bytes / out.publish_bytes : 0.0;
  const auto snap = CaptureServingSnapshot(model.impl(), Learner::kDefaultSnapshotTopK);
  out.snapshot_resident_bytes = static_cast<double>(snap->resident_bytes);
  return out;
}

// ------------------------------------------------------------ frozen reads
//
// Single-threaded wide reads against a *published* snapshot: the paged
// frozen read models behind every ServingHandle, measured without writer or
// reader contention so the row isolates the paged gather kernels themselves
// (GatherSignedPaged / GatherMedianFusedPaged vs the fused per-cell loops).
// Kernel paths toggle like bench_hot_path; the checksum is deterministic and
// must match across paths (bit-identity contract).

struct FrozenReadResult {
  double batch_predicts_per_sec = 0.0;
  double batch_estimates_per_sec = 0.0;
  double checksum = 0.0;
};

// Keeps the timed frozen-read loops observable without touching the
// deterministic checksum.
volatile double g_frozen_sink = 0.0;

constexpr double kMinWindowSeconds = 0.12;

FrozenReadResult RunFrozenReads(const ServingConfig& c, const std::vector<Example>& stream,
                                uint32_t dimension) {
  LearnerBuilder b = PaperBuilder(1e-6, 77).SetMethod(c.method).SetWidth(c.width);
  if (c.depth > 0) b.SetDepth(c.depth);
  if (c.heap > 0) b.SetHeapCapacity(c.heap);
  Learner model = BuildOrDie(b.Build());
  model.UpdateBatch(stream);
  Result<ServingHandle> handle = model.AcquireServingHandle();
  if (!handle.ok()) {
    std::fprintf(stderr, "serving handle: %s\n", handle.status().ToString().c_str());
    std::exit(1);
  }
  ServingHandle& h = handle.value();

  const size_t chunk = std::min(kReadChunk, stream.size());
  const std::span<const Example> queries(stream.data(),
                                         std::min<size_t>(stream.size(), 20000));
  std::vector<double> margins(chunk);
  std::vector<uint32_t> keys(chunk);
  std::vector<float> estimates(chunk);

  auto rate = [](size_t ops_per_pass, auto&& workload) {
    size_t passes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    auto t1 = t0;
    do {
      workload();
      ++passes;
      t1 = std::chrono::steady_clock::now();
    } while (Seconds(t0, t1) < kMinWindowSeconds);
    return static_cast<double>(ops_per_pass) * static_cast<double>(passes) /
           Seconds(t0, t1);
  };

  FrozenReadResult out;
  double sink = 0.0;
  out.batch_predicts_per_sec = rate(queries.size(), [&] {
    for (size_t at = 0; at < queries.size(); at += chunk) {
      const size_t n = std::min(chunk, queries.size() - at);
      h.PredictBatch(std::span<const Example>(queries.data() + at, n), margins.data());
      sink += margins[0];
    }
  });
  const size_t estimates_per_pass = 200000;
  out.batch_estimates_per_sec = rate(estimates_per_pass, [&] {
    SplitMix64 ids(99);
    for (size_t at = 0; at < estimates_per_pass; at += chunk) {
      const size_t n = std::min(chunk, estimates_per_pass - at);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<uint32_t>(ids.Next() % dimension);
      }
      h.EstimateBatch(std::span<const uint32_t>(keys.data(), n), estimates.data());
      sink += static_cast<double>(estimates[0]);
    }
  });
  g_frozen_sink = g_frozen_sink + sink;

  // Deterministic checksum: one fixed pass, identical across kernel paths.
  double checksum = 0.0;
  const size_t check = std::min<size_t>(queries.size(), 2000);
  margins.resize(std::max(chunk, check));
  h.PredictBatch(std::span<const Example>(queries.data(), check), margins.data());
  for (size_t i = 0; i < check; ++i) checksum += margins[i];
  SplitMix64 check_ids(99);
  for (size_t i = 0; i < chunk; ++i) {
    keys[i] = static_cast<uint32_t>(check_ids.Next() % dimension);
  }
  h.EstimateBatch(std::span<const uint32_t>(keys.data(), chunk), estimates.data());
  for (size_t i = 0; i < chunk; ++i) checksum += static_cast<double>(estimates[i]);
  out.checksum = checksum;
  return out;
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;

  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const int examples = ScaledCount(120000);
  const int readers = IntFlagArg(argc, argv, "--readers", 4);
  const std::vector<BenchStreamSpec> streams =
      ResolveBenchStreams(argc, argv, profile, examples, 88);
  const std::vector<Example>& stream = streams.front().examples;
  const uint32_t dimension = streams.front().dimension;
  CalibrateKernelsBeforeTiming();

  Banner("Serving — " + std::to_string(readers) + " readers × 1 writer, publish every " +
         std::to_string(kServeEvery) + " updates (" + std::to_string(stream.size()) +
         " examples, " + std::to_string(std::thread::hardware_concurrency()) +
         " hardware threads)");
  PrintRow({"config", "readers", "updates/s", "predicts/s", "estimates/s",
            "pred-p50us", "pred-p99us", "stale-mean", "stale-max"});

  BenchJson json("serving");
  for (const ServingConfig& c : kConfigs) {
    for (const int r : {0, readers}) {
      const RunResult res = RunMixed(c, r, stream, dimension);
      if (!res.monotone) {
        std::fprintf(stderr, "%s: observed a non-monotone snapshot version!\n",
                     c.label);
        return 1;
      }
      PrintRow({c.label, std::to_string(r), Fmt(res.updates_per_sec, 0),
                Fmt(res.predicts_per_sec, 0), Fmt(res.estimates_per_sec, 0),
                Fmt(res.predict_p50_us, 2), Fmt(res.predict_p99_us, 2),
                Fmt(res.staleness_mean, 0), Fmt(res.staleness_max, 0)});
      json.Row()
          .Str("config", std::string(c.label) + "_r" + std::to_string(r))
          .Str("base_config", c.label)
          .Num("publish_bytes", res.publish_bytes_mean)
          .Num("snapshot_resident_bytes", res.snapshot_resident_bytes)
          // The bench measures the production path (runtime kernel dispatch,
          // whatever this machine has). The "kernel" tag instead encodes the
          // workload group: writer-only rows and mixed-reader rows scale
          // completely differently with core count, so check_perf must
          // normalize each group separately (--kernel writer-only / mixed)
          // or a multi-core runner fails the 1-core baseline's r0 rows.
          .Str("kernel", r == 0 ? "writer-only" : "mixed")
          .Num("readers", r)
          .Num("serve_every", static_cast<double>(kServeEvery))
          .Num("updates_per_sec", res.updates_per_sec)
          .Num("predicts_per_sec", res.predicts_per_sec)
          .Num("estimates_per_sec", res.estimates_per_sec)
          .Num("predict_p50_us", res.predict_p50_us)
          .Num("predict_p99_us", res.predict_p99_us)
          .Num("estimate_p50_us", res.estimate_p50_us)
          .Num("estimate_p99_us", res.estimate_p99_us)
          .Num("staleness_mean_updates", res.staleness_mean)
          .Num("staleness_max_updates", res.staleness_max)
          .Num("checksum", res.checksum);
    }
  }

  Banner("Publish cost — copy-on-write paged snapshots at high cadence "
         "(bytes copied per publish vs the full-table copy)");
  PrintRow({"config", "k", "publish_B", "full_B", "gain", "publish_us",
            "resident_B"});
  for (const PublishCostConfig& c : kPublishConfigs) {
    const PublishCostResult res = RunPublishCost(c, stream);
    PrintRow({c.label, std::to_string(c.serve_every), Fmt(res.publish_bytes, 0),
              Fmt(res.full_table_bytes, 0), Fmt(res.publish_gain, 1),
              Fmt(res.publish_us, 1), Fmt(res.snapshot_resident_bytes, 0)});
    json.Row()
        .Str("config", c.label)
        .Str("base_config", c.label)
        .Str("kernel", "publish")
        .Num("serve_every", static_cast<double>(c.serve_every))
        .Num("publishes", static_cast<double>(res.publishes))
        .Num("publish_bytes", res.publish_bytes)
        .Num("full_table_bytes", res.full_table_bytes)
        .Num("publish_gain", res.publish_gain)
        .Num("publish_us", res.publish_us)
        .Num("snapshot_resident_bytes", res.snapshot_resident_bytes);
  }
  Banner("Frozen reads — single-threaded wide reads on a published snapshot "
         "(the paged serving kernels, scalar vs avx2)");
  PrintRow({"config", "kernel", "batchpred/s", "batchest/s"});
  const bool kernel_paths[] = {false, true};
  const size_t paths = simd::Available() ? 2 : 1;
  for (const BenchStreamSpec& spec : streams) {
    for (const ServingConfig& c : kConfigs) {
      for (size_t k = 0; k < paths; ++k) {
        simd::SetEnabled(kernel_paths[k]);
        const FrozenReadResult res = RunFrozenReads(c, spec.examples, spec.dimension);
        const std::string label = c.label + spec.suffix + "_frozen";
        PrintRow({label, simd::ActiveKernel(), Fmt(res.batch_predicts_per_sec, 0),
                  Fmt(res.batch_estimates_per_sec, 0)});
        json.Row()
            .Str("config", label)
            .Str("base_config", c.label)
            .Str("kernel", simd::ActiveKernel())
            .Num("batch_predicts_per_sec", res.batch_predicts_per_sec)
            .Num("batch_estimates_per_sec", res.batch_estimates_per_sec)
            .Num("checksum", res.checksum);
      }
    }
  }
  simd::SetEnabled(true);  // restore the default for anything after us

  json.WriteIfRequested(argc, argv);
  return 0;
}
