// Figure 7: update throughput of each method, normalized against the memory-
// unconstrained logistic regression, at the configurations of Table 2
// (google-benchmark). The paper's shape: Hash ≈ 2x LR per update; AWM ≈ 2x
// Hash (heap maintenance); WM slowest at large depth (s hash evaluations per
// nonzero); truncation baselines in between.
//
// Reported metric: time per Update() on a pre-generated RCV1-profile stream.
// Compare the per-method times to the `LR` baseline row to recover the
// normalized-runtime bars of the figure.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace wmsketch::bench {
namespace {

std::vector<Example>& SharedStream() {
  static std::vector<Example>* stream = [] {
    auto* s = new std::vector<Example>();
    ClassificationProfile profile = ClassificationProfile::Rcv1Like();
    SyntheticClassificationGen gen(profile, 99);
    const int n = 20000;
    s->reserve(n);
    for (int i = 0; i < n; ++i) s->push_back(gen.Next());
    return s;
  }();
  return *stream;
}

void BM_UncompressedLR(benchmark::State& state) {
  const auto& stream = SharedStream();
  const LearnerOptions opts = PaperOptions(1e-6, 5);
  DenseLinearModel model(ClassificationProfile::Rcv1Like().dimension, opts);
  size_t i = 0;
  for (auto _ : state) {
    const Example& ex = stream[i++ % stream.size()];
    benchmark::DoNotOptimize(model.Update(ex.x, ex.y));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UncompressedLR);

void BM_Method(benchmark::State& state, Method method, size_t budget) {
  const auto& stream = SharedStream();
  Learner model =
      BuildOrDie(PaperBuilder(1e-6, 5).SetMethod(method).SetBudgetBytes(budget).Build());
  size_t i = 0;
  for (auto _ : state) {
    const Example& ex = stream[i++ % stream.size()];
    benchmark::DoNotOptimize(model.Update(ex));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(model.config().ToString());
}

// Batch-ingest variant of the AWM benchmark: the same stream pushed through
// UpdateBatch in 512-example chunks, isolating the facade's per-example
// dispatch overhead from the per-update arithmetic.
void BM_AwmBatch(benchmark::State& state) {
  const auto& stream = SharedStream();
  Learner model = BuildOrDie(
      PaperBuilder(1e-6, 5).SetMethod(Method::kAwmSketch).SetBudgetBytes(KiB(8)).Build());
  size_t i = 0;
  constexpr size_t kChunk = 512;
  for (auto _ : state) {
    const size_t start = (i * kChunk) % (stream.size() - kChunk);
    ++i;
    model.UpdateBatch(std::span<const Example>(stream.data() + start, kChunk));
  }
  state.SetItemsProcessed(state.iterations() * kChunk);
}
BENCHMARK(BM_AwmBatch);

void RegisterAll() {
  for (const size_t kb : {2u, 8u, 32u}) {
    for (const Method m : AllMethods()) {
      const std::string name =
          "BM_" + MethodName(m) + "/" + std::to_string(kb) + "KB";
      benchmark::RegisterBenchmark(name.c_str(),
                                   [m, kb](benchmark::State& st) { BM_Method(st, m, KiB(kb)); });
    }
  }
}

}  // namespace
}  // namespace wmsketch::bench

int main(int argc, char** argv) {
  wmsketch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
