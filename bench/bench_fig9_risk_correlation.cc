// Figure 9: correlation between classifier weights and the exact relative
// risk for the top-2048 features — memory-unconstrained LR on the left
// (paper: Pearson 0.95), the 32 KB AWM-Sketch on the right (paper: 0.91).
// The correlation is computed between weights and log relative risk, the
// natural scale for logistic models (weights ≈ log odds ratios).

#include "apps/explanation.h"
#include "bench/bench_common.h"
#include "datagen/fec_gen.h"
#include "metrics/correlation.h"
#include "metrics/relative_risk.h"

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const int rows = ScaledCount(300000);
  constexpr size_t kTopK = 2048;

  FecLikeGenerator gen(2025);
  RelativeRiskTracker exact;
  LearnerOptions opts = PaperOptions(1e-6, 13);
  opts.rate = LearningRate::Constant(0.1);  // stationary 1-sparse objective
  Learner awm = BuildOrDie(LearnerBuilder()
                               .SetMethod(Method::kAwmSketch)
                               .SetWidth(4096)
                               .SetDepth(1)
                               .SetHeapCapacity(2048)
                               .SetLambda(1e-6)
                               .SetLearningRate(LearningRate::Constant(0.1))
                               .SetSeed(13)
                               .Build());
  StreamingExplainer awm_explainer(&awm, /*outlier_repeats=*/4);
  DenseLinearModel lr(gen.FeatureDimension(), opts, kTopK);
  // The dense reference observes directly (same feeding as the explainer).
  const auto lr_observe = [&lr](const std::vector<uint32_t>& attributes, bool outlier) {
    const int8_t y = outlier ? 1 : -1;
    const uint32_t repeats = outlier ? 4 : 1;
    for (uint32_t r = 0; r < repeats; ++r) {
      for (const uint32_t f : attributes) lr.Update(SparseVector::OneHot(f), y);
    }
  };

  for (int i = 0; i < rows; ++i) {
    const FecRow row = gen.Next();
    awm_explainer.Observe(row.attributes, row.outlier);
    lr_observe(row.attributes, row.outlier);
    for (const uint32_t f : row.attributes) exact.Observe(f, row.outlier);
  }

  // The paper's scatter compares weights to relative risk for retrieved
  // features; the correlation is meaningful only where both quantities are
  // estimable, so we evaluate over all well-observed attributes (>= 200
  // occurrences — converged weights and tight risk estimates).
  Banner("Fig 9 — weight vs log-relative-risk correlation (well-observed features)");
  PrintRow({"model", "pearson", "n"});
  std::vector<uint32_t> observed;
  for (uint32_t f = 0; f < gen.FeatureDimension(); ++f) {
    if (exact.Occurrences(f) >= 200) observed.push_back(f);
  }
  const auto correlate = [&](const std::string& name, auto&& weight_of) {
    std::vector<double> weights;
    std::vector<double> risks;
    for (const uint32_t f : observed) {
      weights.push_back(weight_of(f));
      risks.push_back(exact.LogRelativeRisk(f));
    }
    PrintRow({name, Fmt(PearsonCorrelation(weights, risks), 3),
              std::to_string(weights.size())});
  };
  correlate("lr", [&](uint32_t f) { return static_cast<double>(lr.WeightEstimate(f)); });
  const LearnerSnapshot awm_snap = awm.Snapshot();  // frozen read view
  correlate("awm", [&](uint32_t f) { return static_cast<double>(awm_snap.Estimate(f)); });
  return 0;
}
