// Ablation A3 (DESIGN.md): hash-family choice. The theory (Theorem 1) wants
// O(log(d/δ))-wise independence; the implementation (like the paper's,
// Appendix B) uses 3-wise-independent tabulation hashing. This bench
// measures both the raw evaluation throughput of each family and the
// end-to-end Count-Sketch recovery error they induce — showing the paper's
// observation that the cheap hash costs nothing in practice.

#include <algorithm>
#include <chrono>

#include "bench/bench_common.h"
#include "hash/murmur3.h"
#include "hash/polynomial.h"
#include "hash/tabulation.h"
#include "util/zipf.h"

namespace wmsketch::bench {
namespace {

template <typename Fn>
double NsPerEval(Fn&& fn, int iters) {
  // Warm up, then time.
  uint64_t sink = 0;
  for (int i = 0; i < 10000; ++i) sink ^= fn(static_cast<uint32_t>(i));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) sink ^= fn(static_cast<uint32_t>(i * 2654435761u));
  const auto end = std::chrono::steady_clock::now();
  if (sink == 0xdeadbeef) std::printf("!");  // defeat dead-code elimination
  return std::chrono::duration<double, std::nano>(end - start).count() / iters;
}

// Generic Count-Sketch-style recovery error with a pluggable row hash.
template <typename RowHash>
double RecoveryError(std::vector<RowHash>& rows, uint32_t width) {
  const uint32_t depth = static_cast<uint32_t>(rows.size());
  std::vector<float> table(static_cast<size_t>(width) * depth, 0.0f);
  ZipfSampler zipf(20000, 1.2);
  Rng rng(123);
  std::vector<float> truth(20000, 0.0f);
  for (int i = 0; i < 200000; ++i) {
    const uint32_t key = static_cast<uint32_t>(zipf.Sample(rng));
    truth[key] += 1.0f;
    for (uint32_t j = 0; j < depth; ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(key, &bucket, &sign);
      table[j * width + bucket] += sign;
    }
  }
  double sum_abs_err = 0.0;
  int evaluated = 0;
  for (uint32_t key = 0; key < 2000; ++key) {
    float est[64];
    for (uint32_t j = 0; j < depth; ++j) {
      uint32_t bucket;
      float sign;
      rows[j].BucketAndSign(key, &bucket, &sign);
      est[j] = sign * table[j * width + bucket];
    }
    std::nth_element(est, est + (depth - 1) / 2, est + depth);
    sum_abs_err += std::fabs(est[(depth - 1) / 2] - truth[key]);
    ++evaluated;
  }
  return sum_abs_err / evaluated;
}

// Murmur-finalizer row hash (a third family: multiplicative mixing).
class MurmurBucketHash {
 public:
  MurmurBucketHash(uint64_t seed, uint32_t width) : seed_(seed), mask_(width - 1) {}
  void BucketAndSign(uint32_t key, uint32_t* bucket, float* sign) const {
    const uint64_t h = Murmur3Fmix64(seed_ ^ key);
    *bucket = static_cast<uint32_t>(h) & mask_;
    *sign = ((h >> 32) & 1) != 0 ? 1.0f : -1.0f;
  }

 private:
  uint64_t seed_;
  uint32_t mask_;
};

}  // namespace
}  // namespace wmsketch::bench

int main() {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  const uint32_t width = 1024;
  const uint32_t depth = 5;
  const int iters = 2000000;

  Banner("Ablation A3 — hash family: throughput and recovery error");
  PrintRow({"family", "ns/eval", "mean|err|"});

  {
    std::vector<SignedBucketHash> rows;
    SplitMix64 sm(1);
    for (uint32_t j = 0; j < depth; ++j) rows.emplace_back(sm.Next(), width);
    const TabulationHash tab(2);
    const double ns = NsPerEval([&](uint32_t k) { return tab.Hash(k); }, iters);
    PrintRow({"tabulation (3-wise)", Fmt(ns, 2), Fmt(RecoveryError(rows, width), 3)});
  }
  for (const uint32_t indep : {2u, 4u, 8u, 16u}) {
    std::vector<PolynomialBucketHash> rows;
    SplitMix64 sm(3);
    for (uint32_t j = 0; j < depth; ++j) rows.emplace_back(sm.Next(), width, indep);
    const PolynomialHash poly(4, indep);
    const double ns = NsPerEval([&](uint32_t k) { return poly.Hash(k); }, iters);
    PrintRow({"polynomial k=" + std::to_string(indep), Fmt(ns, 2),
              Fmt(RecoveryError(rows, width), 3)});
  }
  {
    std::vector<MurmurBucketHash> rows;
    SplitMix64 sm(5);
    for (uint32_t j = 0; j < depth; ++j) rows.emplace_back(sm.Next(), width);
    const double ns =
        NsPerEval([&](uint32_t k) { return Murmur3Fmix64(0x1234 ^ k); }, iters);
    PrintRow({"murmur fmix64", Fmt(ns, 2), Fmt(RecoveryError(rows, width), 3)});
  }
  return 0;
}
