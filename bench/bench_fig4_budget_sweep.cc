// Figure 4: relative ℓ2 recovery error of the estimated top-K on the
// RCV1-profile stream under 2/4/8/16 KB budgets (λ = 1e-6, K = 128).
//
// Expected shape (paper): every method improves with budget; the AWM-Sketch
// improves fastest and is lowest at every budget.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wmsketch;
  using namespace wmsketch::bench;
  BenchJson json("fig4_budget_sweep");
  const ClassificationProfile profile = ClassificationProfile::Rcv1Like();
  const std::vector<Method> methods = {
      Method::kSimpleTruncation, Method::kProbabilisticTruncation,
      Method::kSpaceSavingFrequent, Method::kFeatureHashing,
      Method::kWmSketch,           Method::kAwmSketch};
  const int examples = ScaledCount(100000);

  Banner("Fig 4 — RelErr@128 vs memory budget (rcv1, lambda=1e-6)");
  std::vector<std::string> header = {"budget"};
  for (const Method m : methods) header.push_back(MethodName(m));
  PrintRow(header);
  for (const size_t kb : {2u, 4u, 8u, 16u}) {
    const SweepOutput out =
        RunMethodSweep(profile, methods, KiB(kb), /*k=*/128, 1e-6, 7, examples);
    std::vector<std::string> row = {std::to_string(kb) + "KB"};
    for (const MethodRun& run : out.runs) {
      row.push_back(Fmt(run.rel_err));
      json.Row()
          .Num("budget_kb", static_cast<double>(kb))
          .Str("method", run.name)
          .Num("rel_err", run.rel_err)
          .Num("bytes", static_cast<double>(run.bytes));
    }
    PrintRow(row);
  }
  json.WriteIfRequested(argc, argv);
  return 0;
}
