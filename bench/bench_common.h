#pragma once

// Shared support for the figure/table reproduction binaries: aligned table
// printing, the standard method sweep, and stream-size knobs.
//
// Every binary prints the rows/series of one paper figure or table (see
// DESIGN.md §3). Stream lengths are laptop-scale; set WMS_BENCH_SCALE
// (a positive float, default 1.0) to shrink or grow them uniformly.
//
// All budgeted models are built through the LearnerBuilder facade, ingested
// through UpdateBatch, and evaluated through LearnerSnapshot — the benches
// exercise exactly the public API a production consumer would use.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "core/budget.h"
#include "datagen/classification_gen.h"
#include "datagen/sparsity_profile.h"
#include "linear/dense_linear_model.h"
#include "metrics/online_error.h"
#include "metrics/recovery.h"
#include "stream/libsvm_io.h"
#include "util/memory_cost.h"
#include "util/simd.h"

namespace wmsketch::bench {

/// Multiplies a default stream length by the WMS_BENCH_SCALE env var.
inline int ScaledCount(int base) {
  static const double scale = [] {
    const char* s = std::getenv("WMS_BENCH_SCALE");
    if (s == nullptr) return 1.0;
    const double v = std::atof(s);
    return v > 0.0 ? v : 1.0;
  }();
  return static_cast<int>(base * scale);
}

/// Percentile (q in [0, 100], linear interpolation between order statistics)
/// of a sample set; sorts `samples` in place. 0 on an empty set so a bench
/// row for a workload that produced no samples stays printable.
inline double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Prints a header line followed by a rule, e.g. for figure banners.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Fixed-width row printing: each cell 12 chars, left-aligned first column.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-22s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Scans argv for `--json <path>`; returns the path, or "" when the flag is
/// absent. Benches print their human-readable tables unconditionally and
/// additionally write machine-readable rows when the flag is given, e.g.
///   ./bench_fig4_budget_sweep --json BENCH_fig4.json
inline std::string JsonPathArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

/// Scans argv for `<flag> <positive int>` (e.g. `--reps 3`, `--readers 8`);
/// returns `fallback` when absent or non-positive.
inline int IntFlagArg(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const int value = std::atoi(argv[i + 1]);
      if (value > 0) return value;
    }
  }
  return fallback;
}

/// Scans argv for `<flag> <value>`; returns "" when the flag is absent.
inline std::string StrFlagArg(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return "";
}

/// Runs the one-shot SIMD kernel calibration *now*, before any timed cell.
/// Left to its lazy trigger, the ~1 ms measurement fires inside whichever
/// bench cell first issues an eligible gather — silently inflating that
/// cell's time and, worse, doing so for exactly one (config, kernel) row of
/// the committed baseline. Every bench main() calls this once after flag
/// parsing; WMS_SKIP_CALIBRATION still short-circuits it to the defaults.
inline void CalibrateKernelsBeforeTiming() { simd::CalibrateGather(); }

/// Collector for a bench's machine-readable output: flat rows of named
/// numbers/strings, written as {"bench": <name>, "rows": [{...}, ...]}.
/// Append with Row() then Num/Str (which attach to the latest row):
///
///   BenchJson json("fig4_budget_sweep");
///   json.Row().Num("budget_kb", kb).Str("method", name).Num("rel_err", e);
///   json.WriteIfRequested(argc, argv);
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  /// Starts a new (empty) row; Num/Str calls fill it until the next Row().
  BenchJson& Row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    CurrentRow().emplace_back(key, buf);
    return *this;
  }
  BenchJson& Str(const std::string& key, const std::string& value) {
    CurrentRow().emplace_back(key, Quote(value));
    return *this;
  }

  /// Writes to `path`; returns false (with a note on stderr) on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": %s, \"rows\": [", Quote(name_).c_str());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        std::fprintf(f, "%s%s: %s", c == 0 ? "" : ", ", Quote(rows_[r][c].first).c_str(),
                     rows_[r][c].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

  /// WriteTo the `--json <path>` argument if present; no-op otherwise.
  void WriteIfRequested(int argc, char** argv) const {
    const std::string path = JsonPathArg(argc, argv);
    if (!path.empty() && WriteTo(path)) {
      std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    }
  }

 private:
  /// Num/Str before any Row() open one implicitly rather than indexing into
  /// an empty vector.
  std::vector<std::pair<std::string, std::string>>& CurrentRow() {
    if (rows_.empty()) rows_.emplace_back();
    return rows_.back();
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// One example stream a hot-path bench measures, plus how to label its rows.
struct BenchStreamSpec {
  /// Appended to every config label in tables and JSON rows ("" for the
  /// default synthetic stream, "_<profile name>" / "_<dataset stem>"
  /// otherwise), so rows from different streams never collide on the
  /// (config, kernel) key check_perf.py joins baselines on.
  std::string suffix;
  /// Feature-id domain for point-estimate sampling.
  uint32_t dimension = 0;
  std::vector<Example> examples;
};

/// "path/to/rcv1_train.txt.gz" → "rcv1_train".
inline std::string DatasetStem(const std::string& path) {
  std::string stem = path;
  if (const size_t slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (stem.size() > 3 && stem.compare(stem.size() - 3, 3, ".gz") == 0) {
    stem = stem.substr(0, stem.size() - 3);
  }
  if (const size_t dot = stem.find_last_of('.'); dot != std::string::npos && dot > 0) {
    stem = stem.substr(0, dot);
  }
  return stem;
}

/// Resolves the streams a hot-path bench measures from its flags:
///
///   --libsvm <path[.gz]>     measure a real dataset instead of the default
///                            synthetic stream (rows suffixed _<stem>)
///   --profile <path.json>    additionally measure a committed sparsity
///                            profile replayed deterministically (rows
///                            suffixed _<profile name>) — the committable
///                            stand-in for datasets that cannot ship
///   --dump-profile <out>     with --libsvm: measure the dataset's sparsity
///                            profile and write it as JSON (how committed
///                            profiles are made)
///
/// Any malformed input aborts with the parse error (path:line) — a bench
/// that silently fell back to synthetic data would poison every committed
/// baseline row derived from the run.
inline std::vector<BenchStreamSpec> ResolveBenchStreams(int argc, char** argv,
                                                        const ClassificationProfile& synthetic,
                                                        int examples, uint64_t seed) {
  std::vector<BenchStreamSpec> streams;
  const std::string libsvm_path = StrFlagArg(argc, argv, "--libsvm");
  const std::string profile_path = StrFlagArg(argc, argv, "--profile");
  const std::string dump_path = StrFlagArg(argc, argv, "--dump-profile");

  if (!libsvm_path.empty()) {
    Result<std::vector<Example>> r = ReadLibsvmFile(libsvm_path);
    if (!r.ok()) {
      std::fprintf(stderr, "--libsvm: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    BenchStreamSpec spec;
    spec.suffix = "_" + DatasetStem(libsvm_path);
    for (const Example& ex : r.value()) {
      spec.dimension = std::max<uint32_t>(
          spec.dimension, ex.x.empty() ? 1 : ex.x.index(ex.x.nnz() - 1) + 1);
    }
    spec.examples = std::move(r).value();
    if (!dump_path.empty()) {
      Result<SparsityProfile> p =
          MeasureSparsityProfile(spec.examples, DatasetStem(libsvm_path) + "_replay");
      if (!p.ok()) {
        std::fprintf(stderr, "--dump-profile: %s\n", p.status().ToString().c_str());
        std::exit(1);
      }
      std::FILE* f = std::fopen(dump_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "--dump-profile: cannot write %s\n", dump_path.c_str());
        std::exit(1);
      }
      const std::string json = FormatSparsityProfileJson(p.value());
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("wrote sparsity profile %s\n", dump_path.c_str());
    }
    streams.push_back(std::move(spec));
  } else {
    if (!dump_path.empty()) {
      std::fprintf(stderr, "--dump-profile requires --libsvm\n");
      std::exit(1);
    }
    BenchStreamSpec spec;
    spec.dimension = synthetic.dimension;
    SyntheticClassificationGen gen(synthetic, seed);
    spec.examples.reserve(static_cast<size_t>(examples));
    for (int i = 0; i < examples; ++i) spec.examples.push_back(gen.Next());
    streams.push_back(std::move(spec));
  }

  if (!profile_path.empty()) {
    Result<SparsityProfile> p = LoadSparsityProfile(profile_path);
    if (!p.ok()) {
      std::fprintf(stderr, "--profile: %s\n", p.status().ToString().c_str());
      std::exit(1);
    }
    BenchStreamSpec spec;
    spec.suffix = "_" + p.value().name;
    spec.dimension = p.value().dimension;
    SparsityReplayGen gen(p.value(), seed);
    spec.examples.reserve(static_cast<size_t>(examples));
    for (int i = 0; i < examples; ++i) spec.examples.push_back(gen.Next());
    streams.push_back(std::move(spec));
  }
  return streams;
}

/// The paper's standard learner settings (η0 = 0.1, inverse-sqrt decay).
inline LearnerOptions PaperOptions(double lambda, uint64_t seed) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::InverseSqrt(0.1);
  opts.seed = seed;
  return opts;
}

/// A builder pre-loaded with the paper's standard settings.
inline LearnerBuilder PaperBuilder(double lambda, uint64_t seed) {
  return LearnerBuilder()
      .SetLambda(lambda)
      .SetLearningRate(LearningRate::InverseSqrt(0.1))
      .SetSeed(seed);
}

/// Unwraps a Result<Learner>, aborting with the status on failure. Bench
/// configurations are static and known-valid; a failure here is a bug.
inline Learner BuildOrDie(Result<Learner> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "learner build failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Result of training one budgeted method alongside the reference model.
struct MethodRun {
  std::string name;
  double rel_err = 0.0;     // RelErr of estimated top-K vs uncompressed w*
  double error_rate = 0.0;  // progressive-validation error
  size_t bytes = 0;
};

/// Trains every method in `methods` (plus the dense LR reference) on the
/// identical stream of `examples` examples drawn from `profile` with `seed`,
/// and evaluates top-`k` recovery against the reference.
struct SweepOutput {
  std::vector<MethodRun> runs;
  double lr_error_rate = 0.0;
};

inline SweepOutput RunMethodSweep(const ClassificationProfile& profile,
                                  const std::vector<Method>& methods, size_t budget_bytes,
                                  size_t k, double lambda, uint64_t seed, int examples) {
  std::vector<Learner> models;
  models.reserve(methods.size());
  for (const Method m : methods) {
    models.push_back(
        BuildOrDie(PaperBuilder(lambda, seed).SetMethod(m).SetBudgetBytes(budget_bytes).Build()));
  }
  DenseLinearModel reference(profile.dimension, PaperOptions(lambda, seed));

  std::vector<OnlineErrorRate> errors(models.size());
  OnlineErrorRate lr_error;
  SyntheticClassificationGen gen(profile, seed ^ 0xabcdef12345ULL);

  // Chunked ingest through the batch path: one virtual dispatch per model
  // per chunk, with the pre-update margins driving progressive validation.
  constexpr int kChunk = 512;
  std::vector<Example> chunk;
  std::vector<double> margins;
  for (int consumed = 0; consumed < examples;) {
    const int n = std::min(kChunk, examples - consumed);
    chunk.clear();
    for (int i = 0; i < n; ++i) chunk.push_back(gen.Next());
    consumed += n;
    for (size_t m = 0; m < models.size(); ++m) {
      margins.clear();
      models[m].UpdateBatch(chunk, &margins);
      for (int i = 0; i < n; ++i) errors[m].Record(margins[i], chunk[i].y);
    }
    for (const Example& ex : chunk) {
      lr_error.Record(reference.Update(ex.x, ex.y), ex.y);
    }
  }

  SweepOutput out;
  const std::vector<float> w_star = reference.Weights();
  for (size_t m = 0; m < models.size(); ++m) {
    const LearnerSnapshot snap = models[m].Snapshot(k);
    MethodRun run;
    run.name = snap.name();
    std::vector<FeatureWeight> top = snap.top_k();
    if (top.empty()) {
      top = snap.ScanTopK(k, profile.dimension);  // feature hashing
    }
    run.rel_err = RelErrTopK(top, w_star, k);
    run.error_rate = errors[m].Rate();
    run.bytes = snap.memory_cost_bytes();
    out.runs.push_back(run);
  }
  out.lr_error_rate = lr_error.Rate();
  return out;
}

}  // namespace wmsketch::bench
