#pragma once

// Shared support for the figure/table reproduction binaries: aligned table
// printing, the standard method sweep, and stream-size knobs.
//
// Every binary prints the rows/series of one paper figure or table (see
// DESIGN.md §3). Stream lengths are laptop-scale; set WMS_BENCH_SCALE
// (a positive float, default 1.0) to shrink or grow them uniformly.
//
// All budgeted models are built through the LearnerBuilder facade, ingested
// through UpdateBatch, and evaluated through LearnerSnapshot — the benches
// exercise exactly the public API a production consumer would use.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/learner.h"
#include "core/budget.h"
#include "datagen/classification_gen.h"
#include "linear/dense_linear_model.h"
#include "metrics/online_error.h"
#include "metrics/recovery.h"
#include "util/memory_cost.h"

namespace wmsketch::bench {

/// Multiplies a default stream length by the WMS_BENCH_SCALE env var.
inline int ScaledCount(int base) {
  static const double scale = [] {
    const char* s = std::getenv("WMS_BENCH_SCALE");
    if (s == nullptr) return 1.0;
    const double v = std::atof(s);
    return v > 0.0 ? v : 1.0;
  }();
  return static_cast<int>(base * scale);
}

/// Prints a header line followed by a rule, e.g. for figure banners.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Fixed-width row printing: each cell 12 chars, left-aligned first column.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-22s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Scans argv for `--json <path>`; returns the path, or "" when the flag is
/// absent. Benches print their human-readable tables unconditionally and
/// additionally write machine-readable rows when the flag is given, e.g.
///   ./bench_fig4_budget_sweep --json BENCH_fig4.json
inline std::string JsonPathArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

/// Scans argv for `<flag> <positive int>` (e.g. `--reps 3`, `--readers 8`);
/// returns `fallback` when absent or non-positive.
inline int IntFlagArg(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const int value = std::atoi(argv[i + 1]);
      if (value > 0) return value;
    }
  }
  return fallback;
}

/// Collector for a bench's machine-readable output: flat rows of named
/// numbers/strings, written as {"bench": <name>, "rows": [{...}, ...]}.
/// Append with Row() then Num/Str (which attach to the latest row):
///
///   BenchJson json("fig4_budget_sweep");
///   json.Row().Num("budget_kb", kb).Str("method", name).Num("rel_err", e);
///   json.WriteIfRequested(argc, argv);
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  /// Starts a new (empty) row; Num/Str calls fill it until the next Row().
  BenchJson& Row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    CurrentRow().emplace_back(key, buf);
    return *this;
  }
  BenchJson& Str(const std::string& key, const std::string& value) {
    CurrentRow().emplace_back(key, Quote(value));
    return *this;
  }

  /// Writes to `path`; returns false (with a note on stderr) on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": %s, \"rows\": [", Quote(name_).c_str());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        std::fprintf(f, "%s%s: %s", c == 0 ? "" : ", ", Quote(rows_[r][c].first).c_str(),
                     rows_[r][c].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

  /// WriteTo the `--json <path>` argument if present; no-op otherwise.
  void WriteIfRequested(int argc, char** argv) const {
    const std::string path = JsonPathArg(argc, argv);
    if (!path.empty() && WriteTo(path)) {
      std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    }
  }

 private:
  /// Num/Str before any Row() open one implicitly rather than indexing into
  /// an empty vector.
  std::vector<std::pair<std::string, std::string>>& CurrentRow() {
    if (rows_.empty()) rows_.emplace_back();
    return rows_.back();
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// The paper's standard learner settings (η0 = 0.1, inverse-sqrt decay).
inline LearnerOptions PaperOptions(double lambda, uint64_t seed) {
  LearnerOptions opts;
  opts.lambda = lambda;
  opts.rate = LearningRate::InverseSqrt(0.1);
  opts.seed = seed;
  return opts;
}

/// A builder pre-loaded with the paper's standard settings.
inline LearnerBuilder PaperBuilder(double lambda, uint64_t seed) {
  return LearnerBuilder()
      .SetLambda(lambda)
      .SetLearningRate(LearningRate::InverseSqrt(0.1))
      .SetSeed(seed);
}

/// Unwraps a Result<Learner>, aborting with the status on failure. Bench
/// configurations are static and known-valid; a failure here is a bug.
inline Learner BuildOrDie(Result<Learner> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "learner build failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Result of training one budgeted method alongside the reference model.
struct MethodRun {
  std::string name;
  double rel_err = 0.0;     // RelErr of estimated top-K vs uncompressed w*
  double error_rate = 0.0;  // progressive-validation error
  size_t bytes = 0;
};

/// Trains every method in `methods` (plus the dense LR reference) on the
/// identical stream of `examples` examples drawn from `profile` with `seed`,
/// and evaluates top-`k` recovery against the reference.
struct SweepOutput {
  std::vector<MethodRun> runs;
  double lr_error_rate = 0.0;
};

inline SweepOutput RunMethodSweep(const ClassificationProfile& profile,
                                  const std::vector<Method>& methods, size_t budget_bytes,
                                  size_t k, double lambda, uint64_t seed, int examples) {
  std::vector<Learner> models;
  models.reserve(methods.size());
  for (const Method m : methods) {
    models.push_back(
        BuildOrDie(PaperBuilder(lambda, seed).SetMethod(m).SetBudgetBytes(budget_bytes).Build()));
  }
  DenseLinearModel reference(profile.dimension, PaperOptions(lambda, seed));

  std::vector<OnlineErrorRate> errors(models.size());
  OnlineErrorRate lr_error;
  SyntheticClassificationGen gen(profile, seed ^ 0xabcdef12345ULL);

  // Chunked ingest through the batch path: one virtual dispatch per model
  // per chunk, with the pre-update margins driving progressive validation.
  constexpr int kChunk = 512;
  std::vector<Example> chunk;
  std::vector<double> margins;
  for (int consumed = 0; consumed < examples;) {
    const int n = std::min(kChunk, examples - consumed);
    chunk.clear();
    for (int i = 0; i < n; ++i) chunk.push_back(gen.Next());
    consumed += n;
    for (size_t m = 0; m < models.size(); ++m) {
      margins.clear();
      models[m].UpdateBatch(chunk, &margins);
      for (int i = 0; i < n; ++i) errors[m].Record(margins[i], chunk[i].y);
    }
    for (const Example& ex : chunk) {
      lr_error.Record(reference.Update(ex.x, ex.y), ex.y);
    }
  }

  SweepOutput out;
  const std::vector<float> w_star = reference.Weights();
  for (size_t m = 0; m < models.size(); ++m) {
    const LearnerSnapshot snap = models[m].Snapshot(k);
    MethodRun run;
    run.name = snap.name();
    std::vector<FeatureWeight> top = snap.top_k();
    if (top.empty()) {
      top = snap.ScanTopK(k, profile.dimension);  // feature hashing
    }
    run.rel_err = RelErrTopK(top, w_star, k);
    run.error_rate = errors[m].Rate();
    run.bytes = snap.memory_cost_bytes();
    out.runs.push_back(run);
  }
  out.lr_error_rate = lr_error.Rate();
  return out;
}

}  // namespace wmsketch::bench
