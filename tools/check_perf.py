#!/usr/bin/env python3
"""Perf-smoke gate for the hot-path benches (bench_hot_path, bench_serving).

Compares a fresh `--json` run against the committed baseline and fails
(exit 1) when any compared config regressed by more than --max-regression
(default 25%) on any gated metric. --metrics selects the gated columns
(default: updates_per_sec; CI gates updates, predicts, and estimates so
read-path regressions fail the build like write-path ones). Each metric is
normalized independently (see --normalize); rows missing a metric are
skipped for that metric.

Only rows whose kernel matches --kernel (default "scalar") are compared:
the scalar path exists on every machine, so it is the portable regression
signal; AVX2 rows are reported when present but never gate.

With --normalize (what CI uses), each config's fresh/baseline ratio is
divided by the *second-highest* ratio across configs before gating, so a
runner that is uniformly slower or faster than the machine that recorded
the baseline does not trip (or vacuously pass) the per-config check — only
a regression relative to the fastest configs does. The second-highest (not
the median) is the reference so a regression hitting half the configs
cannot drag the normalizer down and mask itself, while a single noisy-high
outlier cannot inflate it either. A broad collapse (all but one config
slow) is caught by --min-median (default 0.4): the median raw ratio must
stay above that generous cross-machine floor. Without --normalize, raw
ratios gate directly (the right mode when fresh and baseline come from the
same machine).

Usage:
  tools/check_perf.py fresh.json BENCH_hot_path.json [--max-regression 0.25]
                      [--metrics updates_per_sec,predicts_per_sec]
                      [--normalize] [--min-median 0.4]

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import statistics
import sys


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for row in data.get("rows", []):
        out[(row["config"], row["kernel"])] = row
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="json from the bench run under test")
    parser.add_argument("baseline", help="committed BENCH_hot_path.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop in updates_per_sec")
    parser.add_argument("--kernel", default="scalar",
                        help="kernel rows to gate on (default: scalar)")
    parser.add_argument("--metrics", default="updates_per_sec",
                        help="comma-separated row fields to gate "
                             "(default: updates_per_sec)")
    parser.add_argument("--lower-better", default="",
                        help="comma-separated metrics where smaller is "
                             "better (publish_bytes, publish_us): their "
                             "ratios are inverted (baseline/fresh) so a "
                             "rise gates exactly like a throughput drop")
    parser.add_argument("--normalize", action="store_true",
                        help="gate on ratios normalized by the second-highest "
                             "ratio (for baselines recorded on another machine)")
    parser.add_argument("--min-median", type=float, default=0.4,
                        help="with --normalize: minimum allowed median raw "
                             "ratio (catches a uniform collapse)")
    args = parser.parse_args()

    fresh = load_rows(args.fresh)
    base = load_rows(args.baseline)
    metrics = [m.strip() for m in args.metrics.split(",") if m.strip()]
    lower_better = {m.strip() for m in args.lower_better.split(",") if m.strip()}

    failures = []
    gated_total = 0
    for metric in metrics:
        rows = []
        for (config, kernel), brow in sorted(base.items()):
            frow = fresh.get((config, kernel))
            if frow is None or metric not in brow or metric not in frow:
                continue
            b, f = float(brow[metric]), float(frow[metric])
            if b <= 0 or (metric in lower_better and f <= 0):
                continue
            ratio = b / f if metric in lower_better else f / b
            rows.append((config, kernel, b, f, ratio))

        gated = [r for r in rows if r[1] == args.kernel]
        if not gated:
            print(f"error: no comparable {metric} rows between fresh run "
                  "and baseline", file=sys.stderr)
            return 1
        gated_total += len(gated)

        ratios = sorted(r[4] for r in gated)
        median = statistics.median(ratios)
        reference = ratios[-2] if len(ratios) >= 3 else ratios[-1]
        norm = reference if args.normalize and reference > 0 else 1.0
        header = "norm" if args.normalize else "ratio"
        print(f"\n== {metric} ==")
        print(f"{'config':<20} {'kernel':<8} {'baseline':>12} {'fresh':>12} "
              f"{'ratio':>7} {header:>7}")
        for config, kernel, b, f, ratio in rows:
            scaled = ratio / norm
            mark = ""
            if kernel == args.kernel and scaled < 1.0 - args.max_regression:
                failures.append((metric, config, kernel, scaled))
                mark = "  << REGRESSION"
            print(f"{config:<20} {kernel:<8} {b:>12.0f} {f:>12.0f} "
                  f"{ratio:>7.2f} {scaled:>7.2f}{mark}")
        if args.normalize:
            print(f"reference ratio (2nd-highest): {reference:.2f}; "
                  f"median raw ratio: {median:.2f} (floor {args.min_median:.2f})")
            if median < args.min_median:
                failures.append((metric, "<median>", args.kernel, median))

    if failures:
        print(f"\n{len(failures)} check(s) regressed more than "
              f"{args.max_regression:.0%} on the {args.kernel} path:",
              file=sys.stderr)
        for metric, config, kernel, ratio in failures:
            print(f"  {metric}: {config} [{kernel}]: {ratio:.2f}x",
                  file=sys.stderr)
        return 1
    print(f"\nOK: {gated_total} {args.kernel} (config, metric) cell(s) within "
          f"{args.max_regression:.0%} of baseline"
          f"{' (normalized)' if args.normalize else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
