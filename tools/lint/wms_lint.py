#!/usr/bin/env python3
"""wms_lint: machine-enforced hot-path invariants for the wmsketch tree.

The ROADMAP's "hold the line" rules used to live in reviewer memory; this
linter turns them into CI-failing checks:

  hash-once    `BucketAndSign` is the raw per-(feature,row) hash. Hot paths
               must consume a HashPlan (sketch/hash_plan.h) that hashed each
               pair exactly once, so calls are forbidden everywhere in src/
               except the hash implementations (src/hash/), the plan builder
               (src/sketch/hash_plan.*), and an explicit allowlist of audited
               fused single-hash read paths (tools/lint/allowlist.json, one
               reason string per file, with a per-file site-count ratchet).

  cow-dirty    All table-backed models store their cells in copy-on-write
               paged tables (util/paged_table.h). Any function in src/core/,
               src/linear/, or src/sketch/ that writes through a paged-table
               span must mark the written pages dirty on the same path
               (MarkPlanDirty / MarkDirtyOffset / MarkAllDirty, or Fill which
               marks internally) or snapshot publication silently serves
               stale pages.

  simd-paired  Every dispatched kernel in src/util/simd.cc and
               src/util/crc32c.cc (functions defined with
               __attribute__((target("avx2..."))), target("avx512...") or
               target("sse4.2"))) must be registered in the scalar
               bit-identity coverage table in tests/hash_plan_test.cc
               (the block between the `wms-lint: simd-kernel-table begin/end`
               markers), so no vector kernel ships without a scalar twin
               being asserted equal.

  checked-io   The snapshot wire formats flow exclusively through the
               checked helpers in src/core/snapshot_io.h (WriteRaw /
               WriteBytes / SectionGuard / SnapshotReader), which validate
               stream state and bound declared sizes before allocation. Raw
               `stream.read(` / `stream.write(` member calls are forbidden
               in src/core/serialization.cc, src/api/learner.cc, and
               src/engine/checkpoint.cc so no load path can regress into
               unvalidated IO.

Engine: the default token-level engine lexes C++ (comments and string
literals stripped, line numbers preserved) and needs nothing beyond the
standard library, so CI can never silently skip it. When python libclang is
importable, `--engine libclang` (or `auto`) refines hash-once to true call
expressions; any libclang failure falls back to the token engine with a
note, never to a skip.

Per-line suppressions:  // wms-lint: allow(<rule>): <reason>
apply to the line they sit on or to the whole function when placed on the
function's signature line. Empty reasons are themselves lint errors.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

RULES = ("hash-once", "cow-dirty", "simd-paired", "checked-io")

# Directories (relative to the tree root) each rule scans.
HASH_ONCE_SCOPE = ("src",)
HASH_ONCE_ALLOWED_DIRS = ("src/hash",)
HASH_ONCE_ALLOWED_FILES = ("src/sketch/hash_plan.h", "src/sketch/hash_plan.cc")
COW_DIRTY_SCOPE = ("src/core", "src/linear", "src/sketch")
SIMD_SOURCES = ("src/util/simd.cc", "src/util/crc32c.cc")
SIMD_TABLE_FILE = "tests/hash_plan_test.cc"
# Files whose stream IO must flow through the checked snapshot_io helpers
# (snapshot::WriteRaw/WriteBytes/SectionGuard and snapshot::SnapshotReader);
# the helpers themselves (src/core/snapshot_io.*) own the raw calls.
CHECKED_IO_FILES = ("src/core/serialization.cc", "src/api/learner.cc",
                    "src/engine/checkpoint.cc", "src/core/delta_io.cc",
                    "src/dist/frame.cc", "src/net/wire.cc",
                    "src/net/protocol.cc", "src/net/server.cc",
                    "src/net/client.cc")
SIMD_TABLE_BEGIN = "wms-lint: simd-kernel-table begin"
SIMD_TABLE_END = "wms-lint: simd-kernel-table end"
ALLOWLIST_PATH = os.path.join("tools", "lint", "allowlist.json")

SUPPRESS_RE = re.compile(r"wms-lint:\s*allow\(([a-z\-]+)\)\s*:?\s*(.*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------- lexing

def strip_comments_and_strings(text):
    """Replaces comments and string/char literal contents with spaces,
    preserving every newline (so offsets map 1:1 to source lines), and
    collects wms-lint suppression comments by line number."""
    out = []
    suppressions = {}  # line (1-based) -> (rule, reason)
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            out.append("\n")
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            m = SUPPRESS_RE.search(text[i:j])
            if m:
                suppressions[line] = (m.group(1), m.group(2).strip())
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            m = SUPPRESS_RE.search(chunk)
            if m:
                suppressions[line] = (m.group(1), m.group(2).strip())
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                elif text[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                elif text[i] == "\n":  # unterminated; keep line mapping
                    out.append("\n")
                    line += 1
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out), suppressions


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "sizeof",
                     "alignof", "decltype", "assert", "static_assert"}

_FUNC_TAIL_RE = re.compile(
    r"\)\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,\s&*]+|"
    r"(?::\s*[^{;]*))?\s*$", re.S)


def function_bodies(clean):
    """Yields (start, end, sig_line) spans of top-level function bodies,
    found by matching `... ) [qualifiers] {` and brace-matching. Nested
    blocks (including lambdas) stay inside their enclosing span."""
    spans = []
    i, n = 0, len(clean)
    while i < n:
        b = clean.find("{", i)
        if b == -1:
            break
        if any(s <= b < e for s, e, _ in spans):
            i = b + 1
            continue
        head = clean[max(0, b - 400):b]
        if not _FUNC_TAIL_RE.search(head):
            i = b + 1
            continue
        # Reject control-flow parens: find the `(` matching the tail `)`.
        close = head.rfind(")")
        depth, k = 0, close
        while k >= 0:
            if head[k] == ")":
                depth += 1
            elif head[k] == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        if k >= 0:
            ident = re.search(r"([A-Za-z_]\w*)\s*$", head[:k])
            if ident and ident.group(1) in _CONTROL_KEYWORDS:
                i = b + 1
                continue
        # Brace-match the body.
        depth, j = 0, b
        while j < n:
            if clean[j] == "{":
                depth += 1
            elif clean[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= n:
            break
        # Signature line: first line of the `) ... {` tail region.
        tail = _FUNC_TAIL_RE.search(head)
        sig_pos = max(0, b - 400) + (tail.start() if tail else 0)
        spans.append((b, j + 1, line_of(clean, sig_pos)))
        i = b + 1  # scan inside too, in case this was a mis-detected block
    # Drop spans nested inside an earlier span (mis-detected inner blocks).
    top = []
    for s in spans:
        if not any(o[0] < s[0] and s[1] <= o[1] for o in top):
            top.append(s)
    return top


def suppressed(suppressions, rule, *lines):
    for ln in lines:
        hit = suppressions.get(ln)
        if hit and hit[0] == rule:
            return hit
    return None


def iter_source_files(root, scopes, exts=(".h", ".cc")):
    for scope in scopes:
        base = os.path.join(root, scope)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


# ----------------------------------------------------------- allowlist

def load_allowlist(root):
    """tools/lint/allowlist.json under the linted root: per-rule, per-file
    entries {path, reason, max_sites}. A missing file means no exemptions."""
    path = os.path.join(root, ALLOWLIST_PATH)
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    allow = {}
    for rule, entries in data.items():
        if rule not in RULES:
            raise ValueError(f"allowlist: unknown rule '{rule}'")
        allow[rule] = {}
        for e in entries:
            if not e.get("reason", "").strip():
                raise ValueError(
                    f"allowlist: entry for '{e.get('path')}' needs a reason")
            allow[rule][e["path"]] = e
    return allow


# ----------------------------------------------------------- hash-once

BUCKET_CALL_RE = re.compile(r"\bBucketAndSign\s*\(")
# A definition/declaration, not a call: preceded by a type token.
BUCKET_DEF_RE = re.compile(r"\b(?:void|auto)\s+BucketAndSign\s*\($")


def hash_once_token_sites(clean):
    """Line numbers of BucketAndSign *call* sites (token engine)."""
    sites = []
    for m in BUCKET_CALL_RE.finditer(clean):
        head = clean[max(0, m.start() - 64):m.end() - 1] + "("
        if BUCKET_DEF_RE.search(head):
            continue  # its own definition or a declaration
        sites.append(line_of(clean, m.start()))
    return sites


def hash_once_libclang_sites(root, rel, notes):
    """Call-expression detection via libclang; returns None to fall back."""
    try:
        from clang import cindex  # noqa: deferred import, optional dep
    except Exception:
        notes.append("libclang python bindings not importable; "
                     "hash-once used the token engine")
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(
            os.path.join(root, rel),
            args=["-std=c++20", f"-I{os.path.join(root, 'src')}", f"-I{root}",
                  "-xc++"])
        sites = []

        def walk(node):
            if node.kind == cindex.CursorKind.CALL_EXPR and \
                    node.spelling == "BucketAndSign":
                if node.location.file and \
                        os.path.samefile(node.location.file.name,
                                         os.path.join(root, rel)):
                    sites.append(node.location.line)
            for ch in node.get_children():
                walk(ch)

        walk(tu.cursor)
        return sorted(sites)
    except Exception as exc:  # any libclang failure -> token fallback
        notes.append(f"libclang failed on {rel} ({exc}); token engine used")
        return None


def check_hash_once(root, allow, engine, notes):
    findings = []
    allow_entries = allow.get("hash-once", {})
    for rel in iter_source_files(root, HASH_ONCE_SCOPE):
        norm = rel.replace(os.sep, "/")
        if any(norm.startswith(d + "/") for d in HASH_ONCE_ALLOWED_DIRS):
            continue
        if norm in HASH_ONCE_ALLOWED_FILES:
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        if "BucketAndSign" not in text:
            continue
        clean, suppressions = strip_comments_and_strings(text)
        sites = None
        if engine in ("libclang", "auto"):
            sites = hash_once_libclang_sites(root, rel, notes)
            if sites is None and engine == "libclang":
                # explicit libclang request: fall back loudly, never skip
                pass
        if sites is None:
            sites = hash_once_token_sites(clean)
        sites = [ln for ln in sites
                 if not suppressed(suppressions, "hash-once", ln)]
        if not sites:
            continue
        entry = allow_entries.get(norm)
        if entry is None:
            for ln in sites:
                findings.append(Finding(
                    norm, ln, "hash-once",
                    "BucketAndSign called outside src/hash/ and the hash_plan "
                    "builders; hot "
                    "paths must consume a HashPlan (or add the file to "
                    "tools/lint/allowlist.json with a reason)"))
        elif len(sites) > int(entry.get("max_sites", 0)):
            findings.append(Finding(
                norm, sites[-1], "hash-once",
                f"{len(sites)} BucketAndSign call sites exceed the audited "
                f"allowlist ratchet of {entry.get('max_sites', 0)} "
                f"(reason on file: {entry['reason']})"))
    return findings


# ----------------------------------------------------------- cow-dirty

TABLE_EXPR = r"\w*[Tt]able\w*(?:\.|->)"
# One nesting level of brackets is enough for `tbl[off[j]]`-style offsets.
IDX = r"\[(?:[^\[\]]|\[[^\]]*\])*\]"
SWEEP_RE = re.compile(r"\bsimd::(?:PlanScatter|MergeScaledTable|ScaleTable)\s*\(")
MARK_RE = re.compile(r"\bMark(?:PlanDirty|DirtyOffset|AllDirty)\s*\(")
FILL_RE = re.compile(TABLE_EXPR + r"Fill\s*\(")
# `float* tbl = table_.data()` / `auto* p = table->data()`
PTR_ALIAS_RE = re.compile(
    r"[\w:<>]+\s*\*\s*(\w+)\s*=\s*" + TABLE_EXPR + r"data\(\)")
# `float& cell = Row(j)[b]` / `double& cell = table_.data()[k]`
REF_ALIAS_RE = re.compile(
    r"[\w:<>]+\s*&\s*(\w+)\s*=\s*(?:Row\s*\([^)]*\)|" + TABLE_EXPR +
    r"data\(\))\s*\[")
ROW_WRITE_RE = re.compile(
    r"\bRow\s*\([^)]*\)\s*" + IDX + r"\s*(?:[+\-*/|&^]?=)(?![=])")
DATA_WRITE_RE = re.compile(
    TABLE_EXPR + r"data\(\)\s*" + IDX + r"\s*(?:[+\-*/|&^]?=)(?![=])")
# `in.read(...)` as well as checked-IO wrappers (`ReadExactRaw(...)`,
# `ReadBytes(...)`) deserializing straight into table storage.
READ_INTO_RE = re.compile(
    r"\b[Rr]ead\w*\s*\(\s*reinterpret_cast<\s*char\s*\*\s*>\s*\(\s*" + TABLE_EXPR +
    r"data\(\)")
COPY_INTO_RE = re.compile(
    r"\bstd::copy\s*\([^;]*?,\s*" + TABLE_EXPR + r"data\(\)\s*\)")


def cow_dirty_sinks(body):
    """(line-offset-in-body, description) for each paged-table write."""
    sinks = []
    for m in SWEEP_RE.finditer(body):
        sinks.append((m.start(), f"table sweep {m.group(0).strip('(').strip()}"))
    for m in ROW_WRITE_RE.finditer(body):
        sinks.append((m.start(), "write through Row(...)[...]"))
    for m in DATA_WRITE_RE.finditer(body):
        sinks.append((m.start(), "write through table data()[...]"))
    for m in READ_INTO_RE.finditer(body):
        sinks.append((m.start(), "istream read into table data()"))
    for m in COPY_INTO_RE.finditer(body):
        sinks.append((m.start(), "std::copy into table data()"))
    aliases = set()
    decl_spans = []  # the `type [*&] name =` spans themselves are not writes
    for m in list(PTR_ALIAS_RE.finditer(body)) + list(REF_ALIAS_RE.finditer(body)):
        aliases.add(m.group(1))
        decl_spans.append((m.start(), m.end()))
    for name in aliases:
        alias_write = re.compile(
            r"\b" + re.escape(name) +
            r"\s*(?:" + IDX + r"\s*)?(?:[+\-*/|&^]?=)(?![=])")
        for m in alias_write.finditer(body):
            if any(s <= m.start() < e for s, e in decl_spans):
                continue
            sinks.append((m.start(), f"write through table alias '{name}'"))
    return sinks


def check_cow_dirty(root, allow, notes):
    del notes  # token engine only; structure mirrors hash-once
    findings = []
    allow_entries = allow.get("cow-dirty", {})
    for rel in iter_source_files(root, COW_DIRTY_SCOPE):
        norm = rel.replace(os.sep, "/")
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        clean, suppressions = strip_comments_and_strings(text)
        if norm in allow_entries:
            continue
        for start, end, sig_line in function_bodies(clean):
            body = clean[start:end]
            sinks = cow_dirty_sinks(body)
            if not sinks:
                continue
            if MARK_RE.search(body) or FILL_RE.search(body):
                continue
            for off, desc in sinks:
                ln = line_of(clean, start + off)
                if suppressed(suppressions, "cow-dirty", ln, sig_line):
                    continue
                findings.append(Finding(
                    norm, ln, "cow-dirty",
                    f"{desc} without MarkPlanDirty/MarkDirtyOffset/"
                    f"MarkAllDirty on the same path: a published snapshot "
                    f"would serve stale pages"))
    return findings


# --------------------------------------------------------- simd-paired

AVX2_KERNEL_RE = re.compile(
    r"__attribute__\s*\(\s*\(\s*target\s*\(\s*\"(?:avx(?:2|512)|sse4\.2)[^\"]*\"\s*\)"
    r"\s*\)\s*\)"
    r"\s*[\w:&*<>]+\s+(\w+)\s*\(")


def check_simd_paired(root, allow, notes):
    del notes
    findings = []
    allow_entries = allow.get("simd-paired", {})
    table_path = os.path.join(root, SIMD_TABLE_FILE)
    # kernel name -> (source rel-path, line); collected across every
    # dispatched source present in this tree.
    kernels = {}
    suppress_by_source = {}
    sources_present = []
    for source in SIMD_SOURCES:
        src_path = os.path.join(root, source)
        if not os.path.exists(src_path):
            continue
        sources_present.append(source)
        with open(src_path, encoding="utf-8") as f:
            src_raw = f.read()
        # The target("avx2...") attribute lives inside a string literal, which
        # the lexer blanks — extract kernels from the raw text; suppressions
        # still come from the lexed pass.
        _, suppress_by_source[source] = strip_comments_and_strings(src_raw)
        for m in AVX2_KERNEL_RE.finditer(src_raw):
            kernels[m.group(1)] = (source, line_of(src_raw, m.start()))
    if not sources_present:
        return findings  # no SIMD sources in this tree (fixture roots)
    if not os.path.exists(table_path):
        findings.append(Finding(
            SIMD_TABLE_FILE, 1, "simd-paired",
            "bit-identity coverage table file missing"))
        return findings
    with open(table_path, encoding="utf-8") as f:
        test_text = f.read()
    begin = test_text.find(SIMD_TABLE_BEGIN)
    end = test_text.find(SIMD_TABLE_END)
    if begin == -1 or end == -1 or end < begin:
        findings.append(Finding(
            SIMD_TABLE_FILE, 1, "simd-paired",
            f"missing '{SIMD_TABLE_BEGIN}' / '{SIMD_TABLE_END}' markers "
            f"around the kernel coverage table"))
        return findings
    table_block = test_text[begin:end]
    registered = set(re.findall(r'"(\w+)"', table_block))
    for name, (source, ln) in sorted(kernels.items(), key=lambda kv: kv[1]):
        if name in registered:
            continue
        if suppressed(suppress_by_source[source], "simd-paired", ln):
            continue
        if source in allow_entries:
            continue
        findings.append(Finding(
            source, ln, "simd-paired",
            f"vector kernel {name} is not registered in the scalar "
            f"bit-identity table in {SIMD_TABLE_FILE}"))
    for name in sorted(registered - set(kernels)):
        findings.append(Finding(
            SIMD_TABLE_FILE, line_of(test_text, begin), "simd-paired",
            f"coverage table lists '{name}' but none of "
            f"{', '.join(sources_present)} defines such a vector kernel "
            f"(stale entry?)"))
    return findings


# ---------------------------------------------------------- checked-io

CHECKED_IO_RE = re.compile(r"(?:\.|->)\s*(read|write)\s*\(")


def check_checked_io(root, allow, notes):
    del notes
    findings = []
    allow_entries = allow.get("checked-io", {})
    for rel in CHECKED_IO_FILES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue  # fixture roots carry only the files under test
        with open(path, encoding="utf-8") as f:
            text = f.read()
        clean, suppressions = strip_comments_and_strings(text)
        sites = []
        for m in CHECKED_IO_RE.finditer(clean):
            ln = line_of(clean, m.start())
            if suppressed(suppressions, "checked-io", ln):
                continue
            sites.append((ln, m.group(1)))
        if not sites:
            continue
        entry = allow_entries.get(rel)
        if entry is not None and len(sites) <= int(entry.get("max_sites", 0)):
            continue
        for ln, verb in sites:
            findings.append(Finding(
                rel, ln, "checked-io",
                f"raw stream .{verb}( call; snapshot IO in this file must go "
                f"through the checked snapshot_io helpers (WriteRaw/"
                f"WriteBytes/SectionGuard/SnapshotReader), which validate "
                f"stream state and bound declared sizes before allocation"))
    return findings


# --------------------------------------------------------------- driver

def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--all", action="store_true", help="run every rule")
    ap.add_argument("--rule", action="append", choices=RULES, default=[],
                    help="run one rule (repeatable)")
    ap.add_argument("--root", default=None,
                    help="tree root to lint (default: the repo containing "
                         "this script)")
    ap.add_argument("--engine", choices=("auto", "token", "libclang"),
                    default="auto",
                    help="hash-once engine: libclang call-expression "
                         "analysis when importable, else token-level "
                         "(cow-dirty and simd-paired are always token-level)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-rule summary on success")
    args = ap.parse_args(argv)

    rules = list(dict.fromkeys(args.rule))
    if args.all or not rules:
        rules = list(RULES)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        print(f"wms_lint: root '{root}' is not a directory", file=sys.stderr)
        return 2

    try:
        allow = load_allowlist(root)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"wms_lint: {exc}", file=sys.stderr)
        return 2

    notes = []
    findings = []
    checkers = {"hash-once": lambda: check_hash_once(root, allow, args.engine, notes),
                "cow-dirty": lambda: check_cow_dirty(root, allow, notes),
                "simd-paired": lambda: check_simd_paired(root, allow, notes),
                "checked-io": lambda: check_checked_io(root, allow, notes)}
    for rule in rules:
        findings.extend(checkers[rule]())

    for note in dict.fromkeys(notes):
        print(f"wms_lint: note: {note}", file=sys.stderr)
    for f in findings:
        print(f)
    if findings:
        print(f"wms_lint: {len(findings)} finding(s) across "
              f"{len(set(f.path for f in findings))} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"wms_lint: clean ({', '.join(rules)}) over {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
